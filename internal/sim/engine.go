// Package sim implements the deterministic discrete-event engine that
// plays the role Minha plays in the paper's evaluation: it executes the
// unmodified protocol code of thousands of nodes in virtual time on a
// single machine. Events run strictly in (time, sequence) order, so a
// simulation with a fixed seed is bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"math/rand/v2"
	"time"
)

// Event is a closure scheduled to run at a virtual instant.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler over virtual time.
// It is not safe for concurrent use: all scheduling happens from event
// callbacks or from the goroutine driving Run.
type Engine struct {
	now      time.Duration
	seq      uint64
	events   eventHeap
	executed uint64
}

// NewEngine returns an engine at virtual time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Executed returns the number of events run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule queues fn to run after delay. Negative delays are clamped to
// zero (run at the current instant, after already-queued events for it).
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleAt queues fn at an absolute virtual instant. Instants in the
// past are clamped to now.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) {
	e.Schedule(at-e.now, fn)
}

// Step runs the single next event. It returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run executes events until virtual time exceeds until, or the queue
// drains. The engine stops *before* running an event scheduled later
// than until, leaving it queued; Now() is then set to until.
func (e *Engine) Run(until time.Duration) {
	for len(e.events) > 0 && e.events[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunUntilIdle executes events until the queue drains. maxEvents bounds
// runaway simulations; it panics when exceeded (0 means no bound).
func (e *Engine) RunUntilIdle(maxEvents uint64) {
	var n uint64
	for e.Step() {
		n++
		if maxEvents > 0 && n > maxEvents {
			panic("sim: RunUntilIdle exceeded event budget")
		}
	}
}

// Ticker schedules fn every period starting at start, until the returned
// stop function is called. fn receives the virtual time of the tick.
func (e *Engine) Ticker(start, period time.Duration, fn func(now time.Duration)) (stop func()) {
	if period <= 0 {
		panic("sim: Ticker period must be positive")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		if !stopped {
			e.Schedule(period, tick)
		}
	}
	e.ScheduleAt(start, tick)
	return func() { stopped = true }
}

// RNG derives a deterministic random generator from a root seed and a
// stream identifier (typically a node id). Separate streams are
// statistically independent, so per-node randomness does not depend on
// event interleaving.
func RNG(seed uint64, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, stream*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d))
}
