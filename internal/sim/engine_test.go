package sim

import (
	"testing"
	"time"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.RunUntilIdle(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
}

func TestEngineFIFOWithinSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.RunUntilIdle(0)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	e.Run(time.Second)
	ran := false
	e.Schedule(-5*time.Second, func() { ran = true })
	e.RunUntilIdle(0)
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if e.Now() != time.Second {
		t.Errorf("clamped event moved time to %v", e.Now())
	}
}

func TestEngineRunStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1*time.Second, func() { ran++ })
	e.Schedule(5*time.Second, func() { ran++ })
	e.Run(2 * time.Second)
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s (advanced to deadline)", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run(10 * time.Second)
	if ran != 2 {
		t.Fatalf("second Run: ran %d events total, want 2", ran)
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			e.Schedule(time.Second, recurse)
		}
	}
	e.Schedule(time.Second, recurse)
	e.RunUntilIdle(0)
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if e.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", e.Now())
	}
}

func TestEngineRunUntilIdleBudget(t *testing.T) {
	e := NewEngine()
	var loop func()
	loop = func() { e.Schedule(time.Millisecond, loop) }
	e.Schedule(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exceeded budget")
		}
	}()
	e.RunUntilIdle(100)
}

func TestEngineScheduleNilPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil fn")
		}
	}()
	e.Schedule(0, nil)
}

func TestTickerFiresAndStops(t *testing.T) {
	e := NewEngine()
	var ticks []time.Duration
	stop := e.Ticker(time.Second, 2*time.Second, func(now time.Duration) {
		ticks = append(ticks, now)
	})
	e.Run(7 * time.Second)
	// Fires at 1s, 3s, 5s, 7s.
	if len(ticks) != 4 {
		t.Fatalf("ticks = %v, want 4 firings", ticks)
	}
	stop()
	e.Run(20 * time.Second)
	if len(ticks) != 4 {
		t.Fatalf("ticker fired after stop: %v", ticks)
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var stop func()
	stop = e.Ticker(0, time.Second, func(time.Duration) {
		count++
		if count == 3 {
			stop()
		}
	})
	e.Run(30 * time.Second)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestRNGStreamsIndependentAndDeterministic(t *testing.T) {
	a1 := RNG(7, 1)
	a2 := RNG(7, 1)
	b := RNG(7, 2)
	var sameAB, sameA12 int
	for i := 0; i < 100; i++ {
		x1, x2, y := a1.Uint64(), a2.Uint64(), b.Uint64()
		if x1 == x2 {
			sameA12++
		}
		if x1 == y {
			sameAB++
		}
	}
	if sameA12 != 100 {
		t.Errorf("same seed+stream diverged: %d/100 equal", sameA12)
	}
	if sameAB > 1 {
		t.Errorf("different streams collide: %d/100 equal", sameAB)
	}
}

func TestEngineExecutedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 17; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.RunUntilIdle(0)
	if e.Executed() != 17 {
		t.Fatalf("Executed = %d, want 17", e.Executed())
	}
}

func TestScheduleAtPast(t *testing.T) {
	e := NewEngine()
	e.Schedule(5*time.Second, func() {})
	e.Run(5 * time.Second)
	ran := false
	e.ScheduleAt(time.Second, func() { ran = true }) // in the past
	e.RunUntilIdle(0)
	if !ran || e.Now() != 5*time.Second {
		t.Fatalf("past ScheduleAt: ran=%v now=%v", ran, e.Now())
	}
}
