package wire

import (
	"reflect"

	"dataflasks/internal/aggregate"
	"dataflasks/internal/antientropy"
	"dataflasks/internal/bootstrap"
	"dataflasks/internal/core"
	"dataflasks/internal/dht"
	"dataflasks/internal/gossip"
	"dataflasks/internal/pss"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// Spec declares one protocol message: its stable kind ID, transport
// plane, and binary encode/decode. Kind IDs are wire contract — never
// renumber or reuse one; retire by leaving a gap and append new
// messages with fresh IDs.
type Spec struct {
	// Kind is the stable on-the-wire message ID.
	Kind uint16
	// Name labels the message in logs and tooling.
	Name string
	// Plane routes the message class: ControlPlane is datagram-eligible,
	// DataPlane stays on streams.
	Plane Plane
	// New returns a fresh zero message (pointer form, as messages travel
	// in envelopes); the gob registry is built from it.
	New func() interface{}

	enc func(b []byte, msg interface{}) []byte
	dec func(r *reader) interface{}
}

// Messages is the protocol surface: every message a node may emit or
// receive, declared once. Codecs, the control/data routing split, and
// the gob registry all derive from this table.
var Messages = []Spec{
	// -- epidemic control plane --
	{Kind: 1, Name: "pss.ShuffleRequest", Plane: ControlPlane,
		New: func() interface{} { return &pss.ShuffleRequest{} },
		enc: func(b []byte, m interface{}) []byte { return appendDescs(b, m.(*pss.ShuffleRequest).Sample) },
		dec: func(r *reader) interface{} { return &pss.ShuffleRequest{Sample: readDescs(r)} },
	},
	{Kind: 2, Name: "pss.ShuffleReply", Plane: ControlPlane,
		New: func() interface{} { return &pss.ShuffleReply{} },
		enc: func(b []byte, m interface{}) []byte { return appendDescs(b, m.(*pss.ShuffleReply).Sample) },
		dec: func(r *reader) interface{} { return &pss.ShuffleReply{Sample: readDescs(r)} },
	},
	{Kind: 3, Name: "slicing.SwapRequest", Plane: ControlPlane,
		New: func() interface{} { return &slicing.SwapRequest{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*slicing.SwapRequest)
			b = appendF64(b, v.Attr)
			b = appendF64(b, v.X)
			return appendU32(b, v.Seq)
		},
		dec: func(r *reader) interface{} {
			return &slicing.SwapRequest{Attr: r.f64(), X: r.f64(), Seq: r.u32()}
		},
	},
	{Kind: 4, Name: "slicing.SwapReply", Plane: ControlPlane,
		New: func() interface{} { return &slicing.SwapReply{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*slicing.SwapReply)
			b = appendF64(b, v.Attr)
			b = appendF64(b, v.X)
			b = appendBool(b, v.Swapped)
			b = appendBool(b, v.Busy)
			return appendU32(b, v.Seq)
		},
		dec: func(r *reader) interface{} {
			return &slicing.SwapReply{Attr: r.f64(), X: r.f64(), Swapped: r.boolean(), Busy: r.boolean(), Seq: r.u32()}
		},
	},
	{Kind: 5, Name: "aggregate.ExtremaMsg", Plane: ControlPlane,
		New: func() interface{} { return &aggregate.ExtremaMsg{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*aggregate.ExtremaMsg)
			b = appendLen(b, len(v.Seeds))
			for _, s := range v.Seeds {
				b = appendF64(b, s)
			}
			return b
		},
		dec: func(r *reader) interface{} {
			n := r.length()
			var seeds []float64
			if n > 0 && r.err == nil {
				seeds = make([]float64, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					seeds = append(seeds, r.f64())
				}
			}
			return &aggregate.ExtremaMsg{Seeds: seeds}
		},
	},
	{Kind: 6, Name: "aggregate.PushSumMsg", Plane: ControlPlane,
		New: func() interface{} { return &aggregate.PushSumMsg{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*aggregate.PushSumMsg)
			b = appendF64(b, v.Sum)
			return appendF64(b, v.Weight)
		},
		dec: func(r *reader) interface{} {
			return &aggregate.PushSumMsg{Sum: r.f64(), Weight: r.f64()}
		},
	},
	{Kind: 7, Name: "antientropy.Digest", Plane: ControlPlane,
		New: func() interface{} { return &antientropy.Digest{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*antientropy.Digest)
			b = appendI32(b, v.Slice)
			return appendHeaders(b, v.Headers)
		},
		dec: func(r *reader) interface{} {
			return &antientropy.Digest{Slice: r.i32(), Headers: readHeaders(r)}
		},
	},
	{Kind: 8, Name: "antientropy.DigestReply", Plane: ControlPlane,
		New: func() interface{} { return &antientropy.DigestReply{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*antientropy.DigestReply)
			b = appendI32(b, v.Slice)
			return appendHeaders(b, v.Headers)
		},
		dec: func(r *reader) interface{} {
			return &antientropy.DigestReply{Slice: r.i32(), Headers: readHeaders(r)}
		},
	},
	{Kind: 9, Name: "antientropy.Summary", Plane: ControlPlane,
		New: func() interface{} { return &antientropy.Summary{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*antientropy.Summary)
			b = appendI32(b, v.Slice)
			return appendFilter(b, v.Filter)
		},
		dec: func(r *reader) interface{} {
			return &antientropy.Summary{Slice: r.i32(), Filter: readFilter(r)}
		},
	},
	{Kind: 10, Name: "antientropy.SummaryReply", Plane: ControlPlane,
		New: func() interface{} { return &antientropy.SummaryReply{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*antientropy.SummaryReply)
			b = appendI32(b, v.Slice)
			return appendFilter(b, v.Filter)
		},
		dec: func(r *reader) interface{} {
			return &antientropy.SummaryReply{Slice: r.i32(), Filter: readFilter(r)}
		},
	},
	{Kind: 11, Name: "antientropy.Pull", Plane: ControlPlane,
		New: func() interface{} { return &antientropy.Pull{} },
		enc: func(b []byte, m interface{}) []byte { return appendHeaders(b, m.(*antientropy.Pull).Headers) },
		dec: func(r *reader) interface{} { return &antientropy.Pull{Headers: readHeaders(r)} },
	},

	// -- data plane: anti-entropy value transfer --
	{Kind: 12, Name: "antientropy.Push", Plane: DataPlane,
		New: func() interface{} { return &antientropy.Push{} },
		enc: func(b []byte, m interface{}) []byte { return appendObjects(b, m.(*antientropy.Push).Objects) },
		dec: func(r *reader) interface{} { return &antientropy.Push{Objects: readObjects(r)} },
	},

	// -- data plane: client-visible requests and acks --
	{Kind: 13, Name: "core.PutRequest", Plane: DataPlane,
		New: func() interface{} { return &core.PutRequest{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*core.PutRequest)
			b = appendU64(b, uint64(v.ID))
			b = appendStr(b, v.Key)
			b = appendU64(b, v.Version)
			b = appendBytes(b, v.Value)
			b = appendU64(b, uint64(v.Origin))
			b = appendStr(b, v.OriginAddr)
			b = appendU8(b, v.TTL)
			b = appendBool(b, v.Intra)
			b = appendBool(b, v.NoAck)
			return appendTraceID(b, v.TraceID)
		},
		dec: func(r *reader) interface{} {
			return &core.PutRequest{
				ID: gossip.RequestID(r.u64()), Key: r.str(), Version: r.u64(), Value: r.blob(),
				Origin: transport.NodeID(r.u64()), OriginAddr: r.str(),
				TTL: r.u8(), Intra: r.boolean(), NoAck: r.boolean(),
				TraceID: readTraceID(r),
			}
		},
	},
	{Kind: 14, Name: "core.PutAck", Plane: DataPlane,
		New: func() interface{} { return &core.PutAck{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*core.PutAck)
			b = appendU64(b, uint64(v.ID))
			b = appendStr(b, v.Key)
			return appendU64(b, v.Version)
		},
		dec: func(r *reader) interface{} {
			return &core.PutAck{ID: gossip.RequestID(r.u64()), Key: r.str(), Version: r.u64()}
		},
	},
	{Kind: 15, Name: "core.PutBatchRequest", Plane: DataPlane,
		New: func() interface{} { return &core.PutBatchRequest{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*core.PutBatchRequest)
			b = appendU64(b, uint64(v.ID))
			b = appendObjects(b, v.Objs)
			b = appendU64(b, uint64(v.Origin))
			b = appendStr(b, v.OriginAddr)
			b = appendU8(b, v.TTL)
			b = appendBool(b, v.Intra)
			b = appendBool(b, v.NoAck)
			return appendTraceID(b, v.TraceID)
		},
		dec: func(r *reader) interface{} {
			return &core.PutBatchRequest{
				ID: gossip.RequestID(r.u64()), Objs: readObjects(r),
				Origin: transport.NodeID(r.u64()), OriginAddr: r.str(),
				TTL: r.u8(), Intra: r.boolean(), NoAck: r.boolean(),
				TraceID: readTraceID(r),
			}
		},
	},
	{Kind: 16, Name: "core.PutBatchAck", Plane: DataPlane,
		New: func() interface{} { return &core.PutBatchAck{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*core.PutBatchAck)
			b = appendU64(b, uint64(v.ID))
			return appendU32(b, uint32(v.Stored))
		},
		dec: func(r *reader) interface{} {
			return &core.PutBatchAck{ID: gossip.RequestID(r.u64()), Stored: int(r.u32())}
		},
	},
	{Kind: 17, Name: "core.GetRequest", Plane: DataPlane,
		New: func() interface{} { return &core.GetRequest{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*core.GetRequest)
			b = appendU64(b, uint64(v.ID))
			b = appendStr(b, v.Key)
			b = appendU64(b, v.Version)
			b = appendU64(b, uint64(v.Origin))
			b = appendStr(b, v.OriginAddr)
			b = appendU8(b, v.TTL)
			b = appendBool(b, v.Intra)
			return appendTraceID(b, v.TraceID)
		},
		dec: func(r *reader) interface{} {
			return &core.GetRequest{
				ID: gossip.RequestID(r.u64()), Key: r.str(), Version: r.u64(),
				Origin: transport.NodeID(r.u64()), OriginAddr: r.str(),
				TTL: r.u8(), Intra: r.boolean(),
				TraceID: readTraceID(r),
			}
		},
	},
	{Kind: 18, Name: "core.GetReply", Plane: DataPlane,
		New: func() interface{} { return &core.GetReply{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*core.GetReply)
			b = appendU64(b, uint64(v.ID))
			b = appendStr(b, v.Key)
			b = appendU64(b, v.Version)
			b = appendBytes(b, v.Value)
			return appendI32(b, v.Slice)
		},
		dec: func(r *reader) interface{} {
			return &core.GetReply{
				ID: gossip.RequestID(r.u64()), Key: r.str(), Version: r.u64(),
				Value: r.blob(), Slice: r.i32(),
			}
		},
	},
	{Kind: 19, Name: "core.DeleteRequest", Plane: DataPlane,
		New: func() interface{} { return &core.DeleteRequest{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*core.DeleteRequest)
			b = appendU64(b, uint64(v.ID))
			b = appendStr(b, v.Key)
			b = appendU64(b, v.Version)
			b = appendU64(b, uint64(v.Origin))
			b = appendStr(b, v.OriginAddr)
			b = appendU8(b, v.TTL)
			b = appendBool(b, v.Intra)
			b = appendBool(b, v.NoAck)
			return appendTraceID(b, v.TraceID)
		},
		dec: func(r *reader) interface{} {
			return &core.DeleteRequest{
				ID: gossip.RequestID(r.u64()), Key: r.str(), Version: r.u64(),
				Origin: transport.NodeID(r.u64()), OriginAddr: r.str(),
				TTL: r.u8(), Intra: r.boolean(), NoAck: r.boolean(),
				TraceID: readTraceID(r),
			}
		},
	},
	{Kind: 20, Name: "core.DeleteAck", Plane: DataPlane,
		New: func() interface{} { return &core.DeleteAck{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*core.DeleteAck)
			b = appendU64(b, uint64(v.ID))
			b = appendStr(b, v.Key)
			return appendU64(b, v.Version)
		},
		dec: func(r *reader) interface{} {
			return &core.DeleteAck{ID: gossip.RequestID(r.u64()), Key: r.str(), Version: r.u64()}
		},
	},
	{Kind: 21, Name: "core.DeleteBatchRequest", Plane: DataPlane,
		New: func() interface{} { return &core.DeleteBatchRequest{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*core.DeleteBatchRequest)
			b = appendU64(b, uint64(v.ID))
			b = appendLen(b, len(v.Items))
			for _, it := range v.Items {
				b = appendStr(b, it.Key)
				b = appendU64(b, it.Version)
			}
			b = appendU64(b, uint64(v.Origin))
			b = appendStr(b, v.OriginAddr)
			b = appendU8(b, v.TTL)
			b = appendBool(b, v.Intra)
			b = appendBool(b, v.NoAck)
			return appendTraceID(b, v.TraceID)
		},
		dec: func(r *reader) interface{} {
			id := gossip.RequestID(r.u64())
			n := r.length()
			var items []core.DeleteItem
			if n > 0 && r.err == nil {
				items = make([]core.DeleteItem, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					items = append(items, core.DeleteItem{Key: r.str(), Version: r.u64()})
				}
			}
			return &core.DeleteBatchRequest{
				ID: id, Items: items,
				Origin: transport.NodeID(r.u64()), OriginAddr: r.str(),
				TTL: r.u8(), Intra: r.boolean(), NoAck: r.boolean(),
				TraceID: readTraceID(r),
			}
		},
	},
	{Kind: 22, Name: "core.DeleteBatchAck", Plane: DataPlane,
		New: func() interface{} { return &core.DeleteBatchAck{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*core.DeleteBatchAck)
			b = appendU64(b, uint64(v.ID))
			return appendU32(b, uint32(v.Applied))
		},
		dec: func(r *reader) interface{} {
			return &core.DeleteBatchAck{ID: gossip.RequestID(r.u64()), Applied: int(r.u32())}
		},
	},

	// -- control plane: mate discovery --
	{Kind: 23, Name: "core.MateQuery", Plane: ControlPlane,
		New: func() interface{} { return &core.MateQuery{} },
		enc: func(b []byte, m interface{}) []byte { return appendI32(b, m.(*core.MateQuery).Slice) },
		dec: func(r *reader) interface{} { return &core.MateQuery{Slice: r.i32()} },
	},
	{Kind: 24, Name: "core.MateReply", Plane: ControlPlane,
		New: func() interface{} { return &core.MateReply{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*core.MateReply)
			b = appendI32(b, v.Slice)
			return appendDescs(b, v.Mates)
		},
		dec: func(r *reader) interface{} {
			return &core.MateReply{Slice: r.i32(), Mates: readDescs(r)}
		},
	},

	// -- DHT baseline --
	{Kind: 25, Name: "dht.Gossip", Plane: ControlPlane,
		New: func() interface{} { return &dht.Gossip{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*dht.Gossip)
			b = appendLen(b, len(v.Members))
			for _, mem := range v.Members {
				b = appendU64(b, uint64(mem.ID))
				b = appendU64(b, mem.Heartbeat)
				b = appendU64(b, uint64(mem.Position))
			}
			return b
		},
		dec: func(r *reader) interface{} {
			n := r.length()
			var members []dht.Member
			if n > 0 && r.err == nil {
				members = make([]dht.Member, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					members = append(members, dht.Member{
						ID: transport.NodeID(r.u64()), Heartbeat: r.u64(), Position: dht.Position(r.u64()),
					})
				}
			}
			return &dht.Gossip{Members: members}
		},
	},
	{Kind: 26, Name: "dht.PutRequest", Plane: DataPlane,
		New: func() interface{} { return &dht.PutRequest{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*dht.PutRequest)
			b = appendU64(b, v.ID)
			b = appendStr(b, v.Key)
			b = appendU64(b, v.Version)
			b = appendBytes(b, v.Value)
			b = appendU64(b, uint64(v.Origin))
			b = appendU8(b, v.Hops)
			return appendBool(b, v.Replica)
		},
		dec: func(r *reader) interface{} {
			return &dht.PutRequest{
				ID: r.u64(), Key: r.str(), Version: r.u64(), Value: r.blob(),
				Origin: transport.NodeID(r.u64()), Hops: r.u8(), Replica: r.boolean(),
			}
		},
	},
	{Kind: 27, Name: "dht.PutAck", Plane: DataPlane,
		New: func() interface{} { return &dht.PutAck{} },
		enc: func(b []byte, m interface{}) []byte { return appendU64(b, m.(*dht.PutAck).ID) },
		dec: func(r *reader) interface{} { return &dht.PutAck{ID: r.u64()} },
	},
	{Kind: 28, Name: "dht.GetRequest", Plane: DataPlane,
		New: func() interface{} { return &dht.GetRequest{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*dht.GetRequest)
			b = appendU64(b, v.ID)
			b = appendStr(b, v.Key)
			b = appendU64(b, uint64(v.Origin))
			b = appendU8(b, v.Hops)
			return appendU8(b, v.Attempt)
		},
		dec: func(r *reader) interface{} {
			return &dht.GetRequest{
				ID: r.u64(), Key: r.str(), Origin: transport.NodeID(r.u64()),
				Hops: r.u8(), Attempt: r.u8(),
			}
		},
	},
	{Kind: 29, Name: "dht.GetReply", Plane: DataPlane,
		New: func() interface{} { return &dht.GetReply{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*dht.GetReply)
			b = appendU64(b, v.ID)
			b = appendStr(b, v.Key)
			b = appendU64(b, v.Version)
			b = appendBytes(b, v.Value)
			return appendBool(b, v.Found)
		},
		dec: func(r *reader) interface{} {
			return &dht.GetReply{
				ID: r.u64(), Key: r.str(), Version: r.u64(), Value: r.blob(), Found: r.boolean(),
			}
		},
	},

	// -- segment-streaming bootstrap --
	{Kind: 30, Name: "bootstrap.ManifestRequest", Plane: ControlPlane,
		New: func() interface{} { return &bootstrap.ManifestRequest{} },
		enc: func(b []byte, m interface{}) []byte { return appendI32(b, m.(*bootstrap.ManifestRequest).Slice) },
		dec: func(r *reader) interface{} { return &bootstrap.ManifestRequest{Slice: r.i32()} },
	},
	{Kind: 31, Name: "bootstrap.ManifestReply", Plane: DataPlane,
		New: func() interface{} { return &bootstrap.ManifestReply{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*bootstrap.ManifestReply)
			b = appendI32(b, v.Slice)
			return appendSegmentInfos(b, v.Segments)
		},
		dec: func(r *reader) interface{} {
			return &bootstrap.ManifestReply{Slice: r.i32(), Segments: readSegmentInfos(r)}
		},
	},
	{Kind: 32, Name: "bootstrap.SegmentFetch", Plane: DataPlane,
		New: func() interface{} { return &bootstrap.SegmentFetch{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*bootstrap.SegmentFetch)
			b = appendU64(b, v.Segment)
			return appendU64(b, uint64(v.Offset))
		},
		dec: func(r *reader) interface{} {
			return &bootstrap.SegmentFetch{Segment: r.u64(), Offset: int64(r.u64())}
		},
	},
	{Kind: 33, Name: "bootstrap.SegmentChunk", Plane: DataPlane,
		New: func() interface{} { return &bootstrap.SegmentChunk{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*bootstrap.SegmentChunk)
			b = appendU64(b, v.Segment)
			b = appendU64(b, uint64(v.Offset))
			b = appendU32(b, v.CRC)
			return appendBytes(b, v.Data)
		},
		dec: func(r *reader) interface{} {
			return &bootstrap.SegmentChunk{
				Segment: r.u64(), Offset: int64(r.u64()), CRC: r.u32(), Data: r.blob(),
			}
		},
	},
	{Kind: 34, Name: "bootstrap.SegmentDone", Plane: DataPlane,
		New: func() interface{} { return &bootstrap.SegmentDone{} },
		enc: func(b []byte, m interface{}) []byte {
			v := m.(*bootstrap.SegmentDone)
			b = appendU64(b, v.Segment)
			b = appendU64(b, uint64(v.Bytes))
			return appendBool(b, v.Missing)
		},
		dec: func(r *reader) interface{} {
			return &bootstrap.SegmentDone{Segment: r.u64(), Bytes: int64(r.u64()), Missing: r.boolean()}
		},
	},
}

var (
	byKind map[uint16]*Spec
	byType map[reflect.Type]*Spec
)

func init() {
	byKind = make(map[uint16]*Spec, len(Messages))
	byType = make(map[reflect.Type]*Spec, len(Messages))
	for i := range Messages {
		s := &Messages[i]
		if s.Kind == 0 {
			panic("wire: kind 0 is reserved (marks an absent entry)")
		}
		if _, dup := byKind[s.Kind]; dup {
			panic("wire: duplicate message kind " + s.Name)
		}
		t := reflect.TypeOf(s.New())
		if _, dup := byType[t]; dup {
			panic("wire: duplicate message type " + s.Name)
		}
		byKind[s.Kind] = s
		byType[t] = s
	}
}

func specOf(msg interface{}) *Spec { return byType[reflect.TypeOf(msg)] }
func specOfKind(kind uint16) *Spec { return byKind[kind] }

// ---- shared composite encoders/decoders ----

func appendDescs(b []byte, ds []pss.Descriptor) []byte {
	b = appendLen(b, len(ds))
	for _, d := range ds {
		b = appendU64(b, uint64(d.ID))
		b = appendU32(b, d.Age)
		b = appendF64(b, d.Attr)
		b = appendI32(b, d.Slice)
		b = appendStr(b, d.Addr)
	}
	return b
}

func readDescs(r *reader) []pss.Descriptor {
	n := r.length()
	if n == 0 || r.err != nil {
		return nil
	}
	ds := make([]pss.Descriptor, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		ds = append(ds, pss.Descriptor{
			ID: transport.NodeID(r.u64()), Age: r.u32(), Attr: r.f64(),
			Slice: r.i32(), Addr: r.str(),
		})
	}
	return ds
}

func appendHeaders(b []byte, hs []antientropy.Header) []byte {
	b = appendLen(b, len(hs))
	for _, h := range hs {
		b = appendStr(b, h.Key)
		b = appendU64(b, h.Version)
	}
	return b
}

func readHeaders(r *reader) []antientropy.Header {
	n := r.length()
	if n == 0 || r.err != nil {
		return nil
	}
	hs := make([]antientropy.Header, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		hs = append(hs, antientropy.Header{Key: r.str(), Version: r.u64()})
	}
	return hs
}

func appendObjects(b []byte, objs []store.Object) []byte {
	b = appendLen(b, len(objs))
	for _, o := range objs {
		b = appendStr(b, o.Key)
		b = appendU64(b, o.Version)
		b = appendBytes(b, o.Value)
	}
	return b
}

func readObjects(r *reader) []store.Object {
	n := r.length()
	if n == 0 || r.err != nil {
		return nil
	}
	objs := make([]store.Object, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		objs = append(objs, store.Object{Key: r.str(), Version: r.u64(), Value: r.blob()})
	}
	return objs
}

// appendFilter keeps the pre-salt frame layout (K, word count, bit
// words) and carries Salt as an OPTIONAL TRAILING field, emitted only
// when non-zero. Pre-salt decoders stop after the bit words and ignore
// trailing frame bytes, so a salted Summary degrades on an old node to
// an unsalted probe (over-push, never a lost repair), while zero-salt
// filters stay byte-identical to pre-salt frames. This compatibility
// trick only works because Filter is the FINAL field of every message
// that carries one — keep it last in any future message.
func appendFilter(b []byte, f antientropy.Filter) []byte {
	b = appendU32(b, f.K)
	b = appendLen(b, len(f.Bits))
	for _, w := range f.Bits {
		b = appendU64(b, w)
	}
	if f.Salt != 0 {
		b = appendU64(b, f.Salt)
	}
	return b
}

func readFilter(r *reader) antientropy.Filter {
	f := antientropy.Filter{K: r.u32()}
	n := r.length()
	if n > 0 && r.err == nil {
		f.Bits = make([]uint64, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			f.Bits = append(f.Bits, r.u64())
		}
	}
	// Pre-salt frames end here; salted frames carry the trailing salt.
	if r.err == nil && r.off < len(r.b) {
		f.Salt = r.u64()
	}
	return f
}

// appendTraceID carries a request's TraceID with the same
// optional-trailing-field trick as appendFilter's salt: emitted only
// when non-zero, so untraced requests stay byte-identical to
// pre-trace frames and pre-trace decoders ignore the trailing bytes
// of a traced one (the request still routes; only its journal entries
// on old nodes are lost). Works only because TraceID is the FINAL
// field of every request that carries one — any future field on those
// messages needs a new kind, not another trailing field.
func appendTraceID(b []byte, id uint64) []byte {
	if id != 0 {
		b = appendU64(b, id)
	}
	return b
}

func readTraceID(r *reader) uint64 {
	// Pre-trace frames end before this field.
	if r.err == nil && r.off < len(r.b) {
		return r.u64()
	}
	return 0
}

func appendSegmentInfos(b []byte, segs []store.SegmentInfo) []byte {
	b = appendLen(b, len(segs))
	for _, s := range segs {
		b = appendU64(b, s.ID)
		b = appendU64(b, uint64(s.Bytes))
		b = appendU64(b, uint64(s.Records))
		b = appendU32(b, s.CRC)
		b = appendStr(b, s.MinKey)
		b = appendStr(b, s.MaxKey)
	}
	return b
}

func readSegmentInfos(r *reader) []store.SegmentInfo {
	n := r.length()
	if n == 0 || r.err != nil {
		return nil
	}
	segs := make([]store.SegmentInfo, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		segs = append(segs, store.SegmentInfo{
			ID: r.u64(), Bytes: int64(r.u64()), Records: int(r.u64()), CRC: r.u32(),
			MinKey: r.str(), MaxKey: r.str(),
		})
	}
	return segs
}
