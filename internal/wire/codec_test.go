package wire

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"

	"dataflasks/internal/aggregate"
	"dataflasks/internal/antientropy"
	"dataflasks/internal/bootstrap"
	"dataflasks/internal/core"
	"dataflasks/internal/dht"
	"dataflasks/internal/pss"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// fixtures returns one populated envelope per message kind, with every
// field non-zero so a skipped or reordered field cannot round-trip
// cleanly by accident. The golden-frames test hashes these encodings,
// so changing a fixture means regenerating testdata/frames.golden.
func fixtures() []Envelope {
	descs := []pss.Descriptor{
		{ID: 11, Age: 3, Attr: 0.25, Slice: 2, Addr: "10.0.0.11:7001"},
		{ID: 12, Age: 0, Attr: 0.75, Slice: -1, Addr: ""},
	}
	headers := []antientropy.Header{
		{Key: "alpha", Version: 1},
		{Key: "beta", Version: 9000000000},
	}
	objs := []store.Object{
		{Key: "alpha", Version: 1, Value: []byte("v1")},
		{Key: "beta", Version: 2, Value: nil},
	}
	msgs := []interface{}{
		&pss.ShuffleRequest{Sample: descs},
		&pss.ShuffleReply{Sample: descs[:1]},
		&slicing.SwapRequest{Attr: 0.5, X: 0.125, Seq: 7},
		&slicing.SwapReply{Attr: 1.5, X: 0.25, Swapped: true, Busy: false, Seq: 7},
		&aggregate.ExtremaMsg{Seeds: []float64{0.1, 0.9, 0.5}},
		&aggregate.PushSumMsg{Sum: 12.5, Weight: 0.5},
		&antientropy.Digest{Slice: 3, Headers: headers},
		&antientropy.DigestReply{Slice: 3, Headers: headers[:1]},
		&antientropy.Summary{Slice: 1, Filter: antientropy.Filter{K: 4, Salt: 0x5a17, Bits: []uint64{0xdeadbeef, 0x1}}},
		&antientropy.SummaryReply{Slice: 1, Filter: antientropy.Filter{K: 4, Salt: 0x1d5a, Bits: []uint64{0xcafe}}},
		&antientropy.Pull{Headers: headers},
		&antientropy.Push{Objects: objs},
		&core.PutRequest{ID: 42, Key: "k", Version: 3, Value: []byte("val"),
			Origin: 9, OriginAddr: "10.0.0.9:7009", TTL: 4, Intra: true, NoAck: true,
			TraceID: 0x7ace1},
		&core.PutAck{ID: 42, Key: "k", Version: 3},
		&core.PutBatchRequest{ID: 43, Objs: objs, Origin: 9,
			OriginAddr: "10.0.0.9:7009", TTL: 4, Intra: false, NoAck: false,
			TraceID: 0x7ace2},
		&core.PutBatchAck{ID: 43, Stored: 2},
		&core.GetRequest{ID: 44, Key: "k", Version: store.Latest, Origin: 9,
			OriginAddr: "10.0.0.9:7009", TTL: 4, Intra: true, TraceID: 0x7ace3},
		&core.GetReply{ID: 44, Key: "k", Version: 3, Value: []byte("val"), Slice: 2},
		&core.DeleteRequest{ID: 45, Key: "k", Version: 3, Origin: 9,
			OriginAddr: "10.0.0.9:7009", TTL: 4, Intra: true, NoAck: true,
			TraceID: 0x7ace4},
		&core.DeleteAck{ID: 45, Key: "k", Version: 3},
		&core.DeleteBatchRequest{ID: 46,
			Items:  []core.DeleteItem{{Key: "a", Version: 1}, {Key: "b", Version: store.Latest}},
			Origin: 9, OriginAddr: "10.0.0.9:7009", TTL: 4, Intra: true, NoAck: true,
			TraceID: 0x7ace5},
		&core.DeleteBatchAck{ID: 46, Applied: 2},
		&core.MateQuery{Slice: 5},
		&core.MateReply{Slice: 5, Mates: descs},
		&dht.Gossip{Members: []dht.Member{{ID: 7, Heartbeat: 11, Position: 1 << 60}}},
		&dht.PutRequest{ID: 47, Key: "k", Version: 3, Value: []byte("val"),
			Origin: 9, Hops: 2, Replica: true},
		&dht.PutAck{ID: 47},
		&dht.GetRequest{ID: 48, Key: "k", Origin: 9, Hops: 2, Attempt: 1},
		&dht.GetReply{ID: 48, Key: "k", Version: 3, Value: []byte("val"), Found: true},
		&bootstrap.ManifestRequest{Slice: 4},
		&bootstrap.ManifestReply{Slice: 4, Segments: []store.SegmentInfo{
			{ID: 3, Bytes: 4096, Records: 17, CRC: 0xfeedf00d, MinKey: "alpha", MaxKey: "zed"},
			{ID: 5, Bytes: 128, Records: 1, CRC: 0x1, MinKey: "m", MaxKey: "m"},
		}},
		&bootstrap.SegmentFetch{Segment: 3, Offset: 2048},
		&bootstrap.SegmentChunk{Segment: 3, Offset: 2048, CRC: 0xabad1dea, Data: []byte("record bytes")},
		&bootstrap.SegmentDone{Segment: 3, Bytes: 4096, Missing: true},
	}
	envs := make([]Envelope, len(msgs))
	for i, m := range msgs {
		envs[i] = Envelope{
			From: transport.NodeID(100 + i), FromAddr: "10.0.0.1:7000",
			To: transport.NodeID(200 + i), Msg: m,
		}
	}
	return envs
}

func TestFixturesCoverEveryMessage(t *testing.T) {
	seen := make(map[uint16]bool)
	for _, env := range fixtures() {
		kind, ok := KindOf(env.Msg)
		if !ok {
			t.Fatalf("fixture %T not in message table", env.Msg)
		}
		seen[kind] = true
	}
	for _, s := range Messages {
		if !seen[s.Kind] {
			t.Errorf("message %s (kind %d) has no fixture", s.Name, s.Kind)
		}
	}
}

func TestRoundTripBothCodecs(t *testing.T) {
	for _, codec := range []Codec{BinaryCodec(), GobCodec()} {
		for _, env := range fixtures() {
			frame, err := codec.Encode(nil, &env)
			if err != nil {
				t.Fatalf("codec %d: encode %T: %v", codec.Version(), env.Msg, err)
			}
			if len(frame) == 0 || frame[0] != codec.Version() {
				t.Fatalf("codec %d: frame of %T does not lead with its version byte", codec.Version(), env.Msg)
			}
			got, err := codec.Decode(frame)
			if err != nil {
				t.Fatalf("codec %d: decode %T: %v", codec.Version(), env.Msg, err)
			}
			if !reflect.DeepEqual(&env, got) {
				t.Fatalf("codec %d: round trip changed %T:\nsent %+v\ngot  %+v",
					codec.Version(), env.Msg, env, got)
			}
		}
	}
}

// TestCrossCodecDecode pins the mixed-cluster property: each codec
// decodes the other's frames, keyed by the leading version byte.
func TestCrossCodecDecode(t *testing.T) {
	bin, gobc := BinaryCodec(), GobCodec()
	for _, env := range fixtures() {
		bf, err := bin.Encode(nil, &env)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := gobc.Decode(bf); err != nil || !reflect.DeepEqual(&env, got) {
			t.Fatalf("gob codec failed on binary frame of %T: %v", env.Msg, err)
		}
		gf, err := gobc.Encode(nil, &env)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := bin.Decode(gf); err != nil || !reflect.DeepEqual(&env, got) {
			t.Fatalf("binary codec failed on gob frame of %T: %v", env.Msg, err)
		}
	}
}

// TestFilterLegacyFrameCompat pins the rolling-upgrade contract for
// Bloom summaries. Salt rides as an optional TRAILING filter field, so
// three things must hold: the pre-salt frame layout (K, word count,
// bit words — no Salt) still decodes; a zero-salt filter encodes
// byte-identically to that legacy layout; and a salted frame is
// exactly the legacy frame plus eight trailing salt bytes, which
// pre-salt decoders leave unread — they see the same filter, unsalted,
// and over-push rather than mis-parse.
func TestFilterLegacyFrameCompat(t *testing.T) {
	codec := BinaryCodec()
	// The antientropy.Summary golden frame as pinned before salting
	// existed (testdata/frames.golden at the pre-salt release).
	legacy, err := hex.DecodeString(
		"0109006c00000000000000d0000000000000000d31302e302e302e313a3730" +
			"3030010000000400000002efbeadde000000000100000000000000")
	if err != nil {
		t.Fatal(err)
	}
	env, err := codec.Decode(legacy)
	if err != nil {
		t.Fatalf("pre-salt Summary frame no longer decodes: %v", err)
	}
	got, ok := env.Msg.(*antientropy.Summary)
	if !ok {
		t.Fatalf("pre-salt frame decoded to %T", env.Msg)
	}
	want := antientropy.Summary{Slice: 1, Filter: antientropy.Filter{K: 4, Bits: []uint64{0xdeadbeef, 0x1}}}
	if !reflect.DeepEqual(*got, want) {
		t.Fatalf("pre-salt frame decoded to %+v, want %+v", *got, want)
	}

	header := Envelope{From: 108, FromAddr: "10.0.0.1:7000", To: 208}

	unsalted := header
	unsalted.Msg = &want
	frame, err := codec.Encode(nil, &unsalted)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, legacy) {
		t.Fatalf("zero-salt Summary drifted from the pre-salt layout\n got  %x\n want %x", frame, legacy)
	}

	salted := header
	salted.Msg = &antientropy.Summary{Slice: 1,
		Filter: antientropy.Filter{K: 4, Salt: 0x5a17, Bits: []uint64{0xdeadbeef, 0x1}}}
	frame, err = codec.Encode(nil, &salted)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != len(legacy)+8 || !bytes.Equal(frame[:len(legacy)], legacy) {
		t.Fatalf("salted Summary must be the legacy frame plus trailing salt\n got  %x\n want %x + 8 salt bytes", frame, legacy)
	}
}

// TestTraceIDLegacyFrameCompat pins the rolling-upgrade contract for
// request tracing, which reuses the Bloom-salt trick on all five
// request messages: TraceID rides as an optional TRAILING field. Three
// things must hold per message: the pre-trace frame layout still
// decodes (TraceID zero); an untraced request encodes byte-identically
// to that legacy layout; and a traced frame is exactly the legacy
// frame plus eight trailing bytes, which pre-trace decoders leave
// unread — they route the same request, just without journaling it.
func TestTraceIDLegacyFrameCompat(t *testing.T) {
	codec := BinaryCodec()
	objs := []store.Object{
		{Key: "alpha", Version: 1, Value: []byte("v1")},
		{Key: "beta", Version: 2, Value: nil},
	}
	// The request golden frames as pinned before TraceID existed
	// (testdata/frames.golden at the pre-trace release).
	cases := []struct {
		name     string
		legacy   string
		from, to transport.NodeID
		untraced interface{}
		traced   interface{}
	}{
		{
			name: "PutRequest",
			legacy: "010d007000000000000000d4000000000000000d31302e302e302e313a373030302a000000" +
				"00000000016b03000000000000000376616c09000000000000000d31302e302e302e393a37303039040101",
			from: 112, to: 212,
			untraced: &core.PutRequest{ID: 42, Key: "k", Version: 3, Value: []byte("val"),
				Origin: 9, OriginAddr: "10.0.0.9:7009", TTL: 4, Intra: true, NoAck: true},
			traced: &core.PutRequest{ID: 42, Key: "k", Version: 3, Value: []byte("val"),
				Origin: 9, OriginAddr: "10.0.0.9:7009", TTL: 4, Intra: true, NoAck: true,
				TraceID: 0x7ace1},
		},
		{
			name: "PutBatchRequest",
			legacy: "010f007200000000000000d6000000000000000d31302e302e302e313a373030302b000000" +
				"000000000205616c70686101000000000000000276310462657461020000000000000000090000000000" +
				"00000d31302e302e302e393a37303039040000",
			from: 114, to: 214,
			untraced: &core.PutBatchRequest{ID: 43, Objs: objs, Origin: 9,
				OriginAddr: "10.0.0.9:7009", TTL: 4},
			traced: &core.PutBatchRequest{ID: 43, Objs: objs, Origin: 9,
				OriginAddr: "10.0.0.9:7009", TTL: 4, TraceID: 0x7ace2},
		},
		{
			name: "GetRequest",
			legacy: "0111007400000000000000d8000000000000000d31302e302e302e313a373030302c000000" +
				"00000000016bffffffffffffffff09000000000000000d31302e302e302e393a373030390401",
			from: 116, to: 216,
			untraced: &core.GetRequest{ID: 44, Key: "k", Version: store.Latest, Origin: 9,
				OriginAddr: "10.0.0.9:7009", TTL: 4, Intra: true},
			traced: &core.GetRequest{ID: 44, Key: "k", Version: store.Latest, Origin: 9,
				OriginAddr: "10.0.0.9:7009", TTL: 4, Intra: true, TraceID: 0x7ace3},
		},
		{
			name: "DeleteRequest",
			legacy: "0113007600000000000000da000000000000000d31302e302e302e313a373030302d000000" +
				"00000000016b030000000000000009000000000000000d31302e302e302e393a37303039040101",
			from: 118, to: 218,
			untraced: &core.DeleteRequest{ID: 45, Key: "k", Version: 3, Origin: 9,
				OriginAddr: "10.0.0.9:7009", TTL: 4, Intra: true, NoAck: true},
			traced: &core.DeleteRequest{ID: 45, Key: "k", Version: 3, Origin: 9,
				OriginAddr: "10.0.0.9:7009", TTL: 4, Intra: true, NoAck: true,
				TraceID: 0x7ace4},
		},
		{
			name: "DeleteBatchRequest",
			legacy: "0115007800000000000000dc000000000000000d31302e302e302e313a373030302e000000" +
				"0000000002016101000000000000000162ffffffffffffffff09000000000000000d31302e302e302e39" +
				"3a37303039040101",
			from: 120, to: 220,
			untraced: &core.DeleteBatchRequest{ID: 46,
				Items:  []core.DeleteItem{{Key: "a", Version: 1}, {Key: "b", Version: store.Latest}},
				Origin: 9, OriginAddr: "10.0.0.9:7009", TTL: 4, Intra: true, NoAck: true},
			traced: &core.DeleteBatchRequest{ID: 46,
				Items:  []core.DeleteItem{{Key: "a", Version: 1}, {Key: "b", Version: store.Latest}},
				Origin: 9, OriginAddr: "10.0.0.9:7009", TTL: 4, Intra: true, NoAck: true,
				TraceID: 0x7ace5},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacy, err := hex.DecodeString(tc.legacy)
			if err != nil {
				t.Fatal(err)
			}
			env, err := codec.Decode(legacy)
			if err != nil {
				t.Fatalf("pre-trace frame no longer decodes: %v", err)
			}
			if !reflect.DeepEqual(env.Msg, tc.untraced) {
				t.Fatalf("pre-trace frame decoded to %+v, want %+v", env.Msg, tc.untraced)
			}

			header := Envelope{From: tc.from, FromAddr: "10.0.0.1:7000", To: tc.to}

			unsalted := header
			unsalted.Msg = tc.untraced
			frame, err := codec.Encode(nil, &unsalted)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(frame, legacy) {
				t.Fatalf("untraced request drifted from the pre-trace layout\n got  %x\n want %x", frame, legacy)
			}

			traced := header
			traced.Msg = tc.traced
			frame, err = codec.Encode(nil, &traced)
			if err != nil {
				t.Fatal(err)
			}
			if len(frame) != len(legacy)+8 || !bytes.Equal(frame[:len(legacy)], legacy) {
				t.Fatalf("traced request must be the legacy frame plus a trailing trace id\n got  %x\n want %x + 8 trace bytes", frame, legacy)
			}
		})
	}
}

func TestControlPlaneSplit(t *testing.T) {
	control := []interface{}{
		&pss.ShuffleRequest{}, &pss.ShuffleReply{},
		&slicing.SwapRequest{}, &slicing.SwapReply{},
		&aggregate.ExtremaMsg{}, &aggregate.PushSumMsg{},
		&antientropy.Digest{}, &antientropy.DigestReply{},
		&antientropy.Summary{}, &antientropy.SummaryReply{}, &antientropy.Pull{},
		&core.MateQuery{}, &core.MateReply{},
		&dht.Gossip{},
		&bootstrap.ManifestRequest{},
	}
	data := []interface{}{
		&antientropy.Push{},
		&core.PutRequest{}, &core.PutAck{}, &core.PutBatchRequest{}, &core.PutBatchAck{},
		&core.GetRequest{}, &core.GetReply{},
		&core.DeleteRequest{}, &core.DeleteAck{}, &core.DeleteBatchRequest{}, &core.DeleteBatchAck{},
		&dht.PutRequest{}, &dht.PutAck{}, &dht.GetRequest{}, &dht.GetReply{},
		&bootstrap.ManifestReply{}, &bootstrap.SegmentFetch{},
		&bootstrap.SegmentChunk{}, &bootstrap.SegmentDone{},
	}
	for _, m := range control {
		if !Control(m) {
			t.Errorf("%T should be control plane", m)
		}
	}
	for _, m := range data {
		if Control(m) {
			t.Errorf("%T should be data plane", m)
		}
	}
	// Types outside the table are data plane: the stream path is the
	// one that always works.
	if Control("not a message") {
		t.Error("unregistered type classified as control")
	}
}

// TestUnknownKind pins forward compatibility: a frame with a kind this
// build does not know decodes to Unknown instead of failing the
// stream, and the payload is ignored.
func TestUnknownKind(t *testing.T) {
	frame := []byte{transport.FrameBinary}
	frame = appendU16(frame, 9999)
	frame = appendU64(frame, 1)
	frame = appendU64(frame, 2)
	frame = appendStr(frame, "10.0.0.1:7000")
	frame = append(frame, 0xde, 0xad) // opaque newer-version payload
	env, err := BinaryCodec().Decode(frame)
	if err != nil {
		t.Fatalf("unknown kind should decode, got %v", err)
	}
	u, ok := env.Msg.(Unknown)
	if !ok || u.Kind != 9999 {
		t.Fatalf("want Unknown{9999}, got %#v", env.Msg)
	}
	if env.From != 1 || env.To != 2 || env.FromAddr != "10.0.0.1:7000" {
		t.Fatalf("envelope header mangled: %+v", env)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	codec := BinaryCodec()
	cases := [][]byte{
		nil,
		{},
		{0x7f},                        // unknown frame version
		{transport.FrameBinary},       // truncated header
		{transport.FrameBinary, 1, 0}, // kind only
	}
	for _, c := range cases {
		if _, err := codec.Decode(c); err == nil {
			t.Errorf("decode(%x) should fail", c)
		}
	}
	// A valid frame truncated anywhere in its body must error, never
	// panic or fabricate fields.
	env := fixtures()[0]
	frame, err := codec.Encode(nil, &env)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(frame); cut++ {
		if _, err := codec.Decode(frame[:cut]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix should fail", cut, len(frame))
		}
	}
}

// TestBinaryEncodeAllocs pins the fast path's contract: encoding into
// a warmed buffer allocates at most once.
func TestBinaryEncodeAllocs(t *testing.T) {
	codec := BinaryCodec()
	env := Envelope{From: 1, FromAddr: "10.0.0.1:7000", To: 2, Msg: &core.PutBatchRequest{
		ID:   7,
		Objs: []store.Object{{Key: "k1", Version: 1, Value: make([]byte, 512)}},
		TTL:  3,
	}}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		out, err := codec.Encode(buf[:0], &env)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	})
	if allocs > 1 {
		t.Fatalf("binary encode allocates %.1f times per op, want <= 1", allocs)
	}
}

func TestCodecByName(t *testing.T) {
	if c, ok := CodecByName("binary"); !ok || c.Version() != transport.FrameBinary {
		t.Fatal("binary codec lookup failed")
	}
	if c, ok := CodecByName("gob"); !ok || c.Version() != transport.FrameGob {
		t.Fatal("gob codec lookup failed")
	}
	if _, ok := CodecByName("json"); ok {
		t.Fatal("unknown codec name should not resolve")
	}
}
