// Package wire defines the on-the-wire representation for real (TCP)
// deployments: gob-encoded envelopes over length-delimited persistent
// streams. Gob keeps the codec honest with zero hand-rolled parsing
// while remaining pure stdlib; simulated and in-process fabrics skip
// encoding entirely and pass message pointers.
//
// Register is the single registry of every protocol message a node
// may emit or receive — PSS shuffles, slicing swaps, aggregation,
// anti-entropy (full-header digests, Bloom summaries, pulls, pushes),
// the data plane (puts/gets/deletes and their batch and ack forms),
// mate discovery, and the DHT baseline. A message type that is not
// registered here cannot cross a TCP link: adding a protocol message
// means adding a line to Register, and forgetting draws a decode
// error on the receiving node rather than silent misbehavior. Old
// nodes ignore message kinds they do not know (the node's dispatch
// falls through), so mixed-version deployments degrade instead of
// crashing.
package wire

import (
	"encoding/gob"
	"sync"

	"dataflasks/internal/aggregate"
	"dataflasks/internal/antientropy"
	"dataflasks/internal/core"
	"dataflasks/internal/dht"
	"dataflasks/internal/pss"
	"dataflasks/internal/slicing"
	"dataflasks/internal/transport"
)

// Envelope is the wire frame: the logical envelope plus the sender's
// dialable address, which lets receivers answer nodes they have never
// dialed.
type Envelope struct {
	From     transport.NodeID
	FromAddr string
	To       transport.NodeID
	Msg      interface{}
}

var registerOnce sync.Once

// Register records every protocol message type with gob. Safe to call
// multiple times.
func Register() {
	registerOnce.Do(func() {
		gob.Register(&pss.ShuffleRequest{})
		gob.Register(&pss.ShuffleReply{})
		gob.Register(&slicing.SwapRequest{})
		gob.Register(&slicing.SwapReply{})
		gob.Register(&aggregate.ExtremaMsg{})
		gob.Register(&aggregate.PushSumMsg{})
		gob.Register(&antientropy.Digest{})
		gob.Register(&antientropy.DigestReply{})
		gob.Register(&antientropy.Summary{})
		gob.Register(&antientropy.SummaryReply{})
		gob.Register(&antientropy.Pull{})
		gob.Register(&antientropy.Push{})
		gob.Register(&core.PutRequest{})
		gob.Register(&core.PutAck{})
		gob.Register(&core.PutBatchRequest{})
		gob.Register(&core.PutBatchAck{})
		gob.Register(&core.GetRequest{})
		gob.Register(&core.GetReply{})
		gob.Register(&core.DeleteRequest{})
		gob.Register(&core.DeleteAck{})
		gob.Register(&core.DeleteBatchRequest{})
		gob.Register(&core.DeleteBatchAck{})
		gob.Register(&core.MateQuery{})
		gob.Register(&core.MateReply{})
		gob.Register(&dht.Gossip{})
		gob.Register(&dht.PutRequest{})
		gob.Register(&dht.PutAck{})
		gob.Register(&dht.GetRequest{})
		gob.Register(&dht.GetReply{})
	})
}
