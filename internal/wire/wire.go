// Package wire defines the on-the-wire representation for real (TCP
// and UDP) deployments. Simulated and in-process fabrics skip encoding
// entirely and pass message pointers; everything that crosses a real
// socket is framed by a Codec.
//
// The protocol surface is declared once, in Messages: every message a
// node may emit or receive — PSS shuffles, slicing swaps, aggregation,
// anti-entropy (full-header digests, Bloom summaries, pulls, pushes),
// the data plane (puts/gets/deletes and their batch and ack forms),
// mate discovery, and the DHT baseline — with a stable kind ID and a
// plane tag (control or data). Both codecs, the datagram routing
// split, and the gob registry are derived from that one table: adding
// a protocol message means adding a table entry, and forgetting draws
// a decode error on the receiving node rather than silent misbehavior.
//
// Two codecs implement the same Codec interface:
//
//   - BinaryCodec: hand-rolled length-delimited fields behind a frame
//     version byte and the table's kind IDs. Encode appends into a
//     caller-owned buffer and allocates nothing once the buffer has
//     warmed up, which is what the hot paths (relay puts, digests,
//     pushes) want.
//   - GobCodec: the original reflection-based encoding, kept as the
//     compat/fallback path for rolling upgrades.
//
// Every frame begins with its codec's version byte and both codecs
// decode frames of either version, so mixed-codec clusters
// interoperate message by message; nodes that do not know a kind
// receive it as Unknown and ignore it, so mixed-version deployments
// degrade instead of crashing.
package wire

import (
	"encoding/gob"
	"sync"

	"dataflasks/internal/transport"
)

// Envelope is the wire frame: the logical envelope plus the sender's
// dialable address, which lets receivers answer nodes they have never
// dialed. It is the transport layer's WireEnvelope; the alias keeps
// protocol code out of the transport package's namespace.
type Envelope = transport.WireEnvelope

// Codec turns envelopes into self-describing frames and back; see the
// package comment for the two implementations.
type Codec = transport.WireCodec

// Plane tags a message with the transport class it belongs to.
type Plane uint8

const (
	// ControlPlane marks small, loss-tolerant epidemic traffic —
	// shuffles, swaps, aggregation, repair digests, mate discovery —
	// eligible for the UDP datagram fast path.
	ControlPlane Plane = iota
	// DataPlane marks payload-bearing or client-visible traffic —
	// puts, gets, deletes, their acks and batches, repair pushes —
	// that stays on TCP streams.
	DataPlane
)

// Unknown stands in for a decoded message whose kind this build does
// not know (a newer peer's message). The node dispatch ignores it via
// its default case, so mixed-version deployments degrade instead of
// crashing — the framed-codec equivalent of gob's unknown-type error
// being confined to one message.
type Unknown struct {
	Kind uint16
}

// Control reports whether msg is control-plane traffic eligible for
// the datagram path. Unregistered types are data plane: the stream
// path is the one that always works.
func Control(msg interface{}) bool {
	if s := specOf(msg); s != nil {
		return s.Plane == ControlPlane
	}
	return false
}

// KindOf returns the stable kind ID for msg (ok=false for types
// outside the message table).
func KindOf(msg interface{}) (uint16, bool) {
	if s := specOf(msg); s != nil {
		return s.Kind, true
	}
	return 0, false
}

var registerOnce sync.Once

// Register records every protocol message type with gob. It is derived
// from the Messages table and safe to call multiple times; the codec
// constructors call it, so explicit calls remain only as a shim for
// existing callers.
func Register() {
	registerOnce.Do(func() {
		for _, s := range Messages {
			gob.Register(s.New())
		}
	})
}

// CodecByName maps a configuration string to a codec: "binary" (the
// fast default) or "gob" (the compat/fallback path).
func CodecByName(name string) (Codec, bool) {
	switch name {
	case "binary":
		return BinaryCodec(), true
	case "gob":
		return GobCodec(), true
	}
	return nil, false
}
