package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"dataflasks/internal/transport"
)

// Frame layout (binary codec, version byte transport.FrameBinary):
//
//	[0]    version byte
//	[1:3]  kind ID, little-endian uint16 (Messages table)
//	[3:11] From node id, little-endian uint64
//	[11:19] To node id, little-endian uint64
//	[19:]  FromAddr (uvarint length + bytes), then the per-kind payload
//
// Scalars are fixed-width little-endian; strings, byte slices and
// repeated groups carry a uvarint length/count prefix. The layout is
// pinned by the golden-frames test: changing it requires a new frame
// version byte, not an in-place edit.

var (
	errFrameEmpty   = errors.New("wire: empty frame")
	errFrameShort   = errors.New("wire: truncated frame")
	errFrameVersion = errors.New("wire: unknown frame version")
)

// binaryCodec encodes with the hand-rolled framing; see Decode for the
// shared mixed-version decode path.
type binaryCodec struct{}

// BinaryCodec returns the hand-rolled framed codec — the fast path.
func BinaryCodec() Codec {
	Register() // frames may negotiate down to gob; keep it decodable
	return binaryCodec{}
}

// Version implements Codec.
func (binaryCodec) Version() byte { return transport.FrameBinary }

// Control implements Codec.
func (binaryCodec) Control(msg interface{}) bool { return Control(msg) }

// Encode implements Codec: it appends one frame to buf. With a warmed
// buffer the encode path allocates nothing.
func (binaryCodec) Encode(buf []byte, env *Envelope) ([]byte, error) {
	spec := specOf(env.Msg)
	if spec == nil {
		return buf, fmt.Errorf("wire: message type %T is not in the message table", env.Msg)
	}
	buf = append(buf, transport.FrameBinary)
	buf = appendU16(buf, spec.Kind)
	buf = appendU64(buf, uint64(env.From))
	buf = appendU64(buf, uint64(env.To))
	buf = appendStr(buf, env.FromAddr)
	return spec.enc(buf, env.Msg), nil
}

// Decode implements Codec; frames of either version are accepted.
func (binaryCodec) Decode(data []byte) (*Envelope, error) { return decodeFrame(data) }

// gobCodec encodes with gob behind the compat version byte.
type gobCodec struct{}

// GobCodec returns the reflection-based compat codec.
func GobCodec() Codec {
	Register()
	return gobCodec{}
}

// Version implements Codec.
func (gobCodec) Version() byte { return transport.FrameGob }

// Control implements Codec.
func (gobCodec) Control(msg interface{}) bool { return Control(msg) }

// Encode implements Codec. Gob pays a fresh type dictionary per frame
// here — that cost is the reason BinaryCodec exists; this path remains
// for rolling upgrades and as the decode reference.
func (gobCodec) Encode(buf []byte, env *Envelope) ([]byte, error) {
	var bb bytes.Buffer
	bb.WriteByte(transport.FrameGob)
	if err := gob.NewEncoder(&bb).Encode(env); err != nil {
		return buf, err
	}
	return append(buf, bb.Bytes()...), nil
}

// Decode implements Codec; frames of either version are accepted.
func (gobCodec) Decode(data []byte) (*Envelope, error) { return decodeFrame(data) }

// decodeFrame is the shared decode path: the leading version byte
// names the codec that produced the frame, so both codecs accept both.
func decodeFrame(data []byte) (*Envelope, error) {
	if len(data) == 0 {
		return nil, errFrameEmpty
	}
	switch data[0] {
	case transport.FrameGob:
		var env Envelope
		if err := gob.NewDecoder(bytes.NewReader(data[1:])).Decode(&env); err != nil {
			return nil, err
		}
		return &env, nil
	case transport.FrameBinary:
		return decodeBinary(data)
	default:
		return nil, fmt.Errorf("%w: %d", errFrameVersion, data[0])
	}
}

func decodeBinary(data []byte) (*Envelope, error) {
	r := reader{b: data, off: 1} // version byte already dispatched
	kind := r.u16()
	env := &Envelope{
		From:     transport.NodeID(r.u64()),
		To:       transport.NodeID(r.u64()),
		FromAddr: r.str(),
	}
	if r.err != nil {
		return nil, r.err
	}
	spec := specOfKind(kind)
	if spec == nil {
		// A newer peer's message: deliverable, ignorable, not an error.
		env.Msg = Unknown{Kind: kind}
		return env, nil
	}
	env.Msg = spec.dec(&r)
	if r.err != nil {
		return nil, r.err
	}
	return env, nil
}

// ---- append helpers (encode) ----

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI32(b []byte, v int32) []byte  { return appendU32(b, uint32(v)) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
func appendLen(b []byte, n int) []byte { return binary.AppendUvarint(b, uint64(n)) }
func appendStr(b []byte, s string) []byte {
	b = appendLen(b, len(s))
	return append(b, s...)
}
func appendBytes(b []byte, p []byte) []byte {
	b = appendLen(b, len(p))
	return append(b, p...)
}

// ---- reader (decode) ----

// reader walks a frame, latching the first error; helpers return zero
// values after a failure so decode functions stay linear.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errFrameShort
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil || n < 0 || len(r.b)-r.off < n {
		r.fail()
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *reader) u8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *reader) u16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (r *reader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *reader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *reader) i32() int32    { return int32(r.u32()) }
func (r *reader) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *reader) boolean() bool { return r.u8() != 0 }
func (r *reader) length() int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 || v > uint64(len(r.b)) {
		// A length can never exceed the frame itself; rejecting early
		// keeps fuzzed lengths from provoking huge allocations.
		r.fail()
		return 0
	}
	r.off += n
	return int(v)
}

func (r *reader) str() string {
	n := r.length()
	p := r.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

// blob returns a copy: frames are reused buffers, but decoded messages
// (values, keys) outlive them.
func (r *reader) blob() []byte {
	n := r.length()
	p := r.take(n)
	if p == nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, p)
	return out
}
