package wire

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/frames.golden from the current encoder")

const goldenPath = "testdata/frames.golden"

// TestGoldenFrames pins the binary frame layout byte for byte. A
// mismatch here means the wire format changed: that breaks rolling
// upgrades and requires a new frame version byte, not a golden-file
// update. Only regenerate (go test -run Golden -update) when fixtures
// were deliberately extended.
func TestGoldenFrames(t *testing.T) {
	codec := BinaryCodec()
	if *updateGolden {
		var out bytes.Buffer
		fmt.Fprintln(&out, "# Binary wire frames of the codec_test fixtures, hex-encoded.")
		fmt.Fprintln(&out, "# Format: <message name>: <frame hex>. Regenerate: go test -run Golden -update")
		for _, env := range fixtures() {
			frame, err := codec.Encode(nil, &env)
			if err != nil {
				t.Fatal(err)
			}
			kind, _ := KindOf(env.Msg)
			fmt.Fprintf(&out, "%s: %s\n", specOfKind(kind).Name, hex.EncodeToString(frame))
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (generate with -update): %v", err)
	}
	defer f.Close()

	golden := make(map[string]string)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, hexFrame, ok := strings.Cut(line, ": ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		golden[name] = hexFrame
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	seen := make(map[string]bool)
	for _, env := range fixtures() {
		kind, _ := KindOf(env.Msg)
		name := specOfKind(kind).Name
		seen[name] = true
		frame, err := codec.Encode(nil, &env)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := golden[name]
		if !ok {
			t.Errorf("%s: no golden frame (new message? regenerate with -update)", name)
			continue
		}
		if got := hex.EncodeToString(frame); got != want {
			t.Errorf("%s: encoding drifted from golden frame\n got  %s\n want %s", name, got, want)
		}
		// The stored frame must also still decode to the fixture: the
		// other half of the compatibility contract.
		raw, err := hex.DecodeString(want)
		if err != nil {
			t.Fatalf("%s: bad golden hex: %v", name, err)
		}
		dec, err := codec.Decode(raw)
		if err != nil {
			t.Errorf("%s: golden frame no longer decodes: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(&env, dec) {
			t.Errorf("%s: golden frame decodes to %+v, want %+v", name, dec, env)
		}
	}
	for name := range golden {
		if !seen[name] {
			t.Errorf("golden frame %s has no fixture (removed message kinds must keep decoding)", name)
		}
	}
}
