package wire

import (
	"testing"

	"dataflasks/internal/transport"
)

// FuzzDecodeBinary drives the hand-rolled decoder with arbitrary
// bytes. The decoder's contract under corruption: return an error or a
// well-formed envelope — never panic, never allocate absurdly (the
// length() guard bounds every slice by the frame size). Seeds are the
// valid encodings of every fixture plus a few hand-built edge frames,
// so the fuzzer starts on the real format and mutates from there.
func FuzzDecodeBinary(f *testing.F) {
	codec := BinaryCodec()
	for _, env := range fixtures() {
		frame, err := codec.Encode(nil, &env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	// Unknown kind with trailing payload (forward-compat path).
	unknown := []byte{transport.FrameBinary}
	unknown = appendU16(unknown, 500)
	unknown = appendU64(unknown, 1)
	unknown = appendU64(unknown, 2)
	unknown = appendStr(unknown, "addr")
	f.Add(append(unknown, 1, 2, 3))
	f.Add([]byte{})
	f.Add([]byte{transport.FrameBinary})
	f.Add([]byte{0xff, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Skip gob-version frames: gob's own fuzzing is stdlib's
		// business, and its decoder is far slower than the mutator.
		if len(data) > 0 && data[0] == transport.FrameGob {
			t.Skip()
		}
		env, err := codec.Decode(data)
		if err != nil {
			return
		}
		if env == nil {
			t.Fatal("nil envelope with nil error")
		}
		if env.Msg == nil {
			t.Fatal("decoded envelope has nil message")
		}
		// Whatever decoded must re-encode: a decoded message is always
		// a table message (or Unknown, which is not re-encodable and
		// is exempt).
		if _, isUnknown := env.Msg.(Unknown); isUnknown {
			return
		}
		if _, err := codec.Encode(nil, env); err != nil {
			t.Fatalf("decoded message %T does not re-encode: %v", env.Msg, err)
		}
	})
}
