package wire

import (
	"fmt"
	"testing"

	"dataflasks/internal/antientropy"
	"dataflasks/internal/core"
	"dataflasks/internal/pss"
	"dataflasks/internal/store"
	"dataflasks/internal/transport"
)

// benchEnvelopes are the three wire-dominant message shapes: a batched
// write (the data-plane hot path), a Bloom summary (the anti-entropy
// steady state), and a shuffle (the PSS control plane, sent every
// round by every node).
func benchEnvelopes() map[string]Envelope {
	objs := make([]store.Object, 32)
	for i := range objs {
		objs[i] = store.Object{
			Key:     fmt.Sprintf("bench/object/%04d", i),
			Version: uint64(i + 1),
			Value:   make([]byte, 256),
		}
	}
	descs := make([]pss.Descriptor, 10)
	for i := range descs {
		descs[i] = pss.Descriptor{
			ID: transport.NodeID(1000 + i), Age: uint32(i), Attr: float64(i) / 10,
			Slice: int32(i % 4), Addr: fmt.Sprintf("10.0.0.%d:7000", i+1),
		}
	}
	return map[string]Envelope{
		"put_batch": {From: 1, FromAddr: "10.0.0.1:7000", To: 2, Msg: &core.PutBatchRequest{
			ID: 7, Objs: objs, Origin: 1, OriginAddr: "10.0.0.1:7000", TTL: 4,
		}},
		"summary": {From: 1, FromAddr: "10.0.0.1:7000", To: 2, Msg: &antientropy.Summary{
			Slice: 3, Filter: antientropy.Filter{K: 7, Bits: make([]uint64, 128)},
		}},
		"shuffle": {From: 1, FromAddr: "10.0.0.1:7000", To: 2, Msg: &pss.ShuffleRequest{
			Sample: descs,
		}},
	}
}

func BenchmarkEncode(b *testing.B) {
	for _, codec := range []struct {
		name string
		c    Codec
	}{{"binary", BinaryCodec()}, {"gob", GobCodec()}} {
		for name, env := range benchEnvelopes() {
			b.Run(codec.name+"/"+name, func(b *testing.B) {
				buf := make([]byte, 0, 1<<16)
				var err error
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					buf, err = codec.c.Encode(buf[:0], &env)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(int64(len(buf)))
			})
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, codec := range []struct {
		name string
		c    Codec
	}{{"binary", BinaryCodec()}, {"gob", GobCodec()}} {
		for name, env := range benchEnvelopes() {
			frame, err := codec.c.Encode(nil, &env)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(codec.name+"/"+name, func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(len(frame)))
				for i := 0; i < b.N; i++ {
					if _, err := codec.c.Decode(frame); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
