package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"dataflasks/internal/antientropy"
	"dataflasks/internal/core"
	"dataflasks/internal/gossip"
	"dataflasks/internal/pss"
	"dataflasks/internal/slicing"
	"dataflasks/internal/store"
)

// roundTrip encodes and decodes an envelope through a fresh gob stream.
func roundTrip(t *testing.T, env Envelope) Envelope {
	t.Helper()
	Register()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out Envelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestRegisterIdempotent(t *testing.T) {
	Register()
	Register() // must not panic on double registration
}

func TestEnvelopeRoundTripAllMessageTypes(t *testing.T) {
	msgs := []interface{}{
		&pss.ShuffleRequest{Sample: []pss.Descriptor{{ID: 3, Age: 2, Attr: 0.5, Slice: 1, Addr: "h:1"}}},
		&pss.ShuffleReply{Sample: []pss.Descriptor{{ID: 4}}},
		&slicing.SwapRequest{Attr: 1.5, X: 0.25, Seq: 9},
		&slicing.SwapReply{Attr: 2.5, X: 0.75, Swapped: true, Seq: 9},
		&antientropy.Digest{Slice: 2, Headers: []antientropy.Header{{Key: "k", Version: 7}}},
		&antientropy.DigestReply{Slice: 2, Headers: []antientropy.Header{{Key: "j", Version: 1}}},
		&antientropy.Pull{Headers: []antientropy.Header{{Key: "k", Version: 7}}},
		&antientropy.Push{Objects: []store.Object{{Key: "k", Version: 7, Value: []byte("v")}}},
		&core.PutRequest{
			ID: gossip.MakeRequestID(9, 1), Key: "k", Version: 2, Value: []byte("payload"),
			Origin: 9, OriginAddr: "c:9", TTL: 5, Intra: true,
		},
		&core.PutAck{ID: 1, Key: "k", Version: 2},
		&core.PutBatchRequest{
			ID: gossip.MakeRequestID(9, 2),
			Objs: []store.Object{
				{Key: "a", Version: 1, Value: []byte("x")},
				{Key: "b", Version: 2, Value: []byte("y")},
			},
			Origin: 9, OriginAddr: "c:9", TTL: 6, NoAck: true,
		},
		&core.PutBatchAck{ID: 3, Stored: 2},
		&core.DeleteRequest{
			ID: gossip.MakeRequestID(9, 3), Key: "k", Version: store.Latest,
			Origin: 9, OriginAddr: "c:9", TTL: 4, Intra: true,
		},
		&core.DeleteAck{ID: 4, Key: "k", Version: 7},
		&core.GetRequest{ID: 2, Key: "k", Version: store.Latest, Origin: 9, OriginAddr: "c:9", TTL: 3},
		&core.GetReply{ID: 2, Key: "k", Version: 4, Value: []byte("v"), Slice: 3},
		&core.MateQuery{Slice: 7},
		&core.MateReply{Slice: 7, Mates: []pss.Descriptor{{ID: 11, Slice: 7, Addr: "h:2"}}},
	}
	for _, msg := range msgs {
		env := Envelope{From: 1, FromAddr: "127.0.0.1:999", To: 2, Msg: msg}
		got := roundTrip(t, env)
		if got.From != 1 || got.FromAddr != "127.0.0.1:999" || got.To != 2 {
			t.Errorf("%T: envelope header = %+v", msg, got)
		}
		if !reflect.DeepEqual(got.Msg, msg) {
			t.Errorf("%T round trip:\n got %#v\nwant %#v", msg, got.Msg, msg)
		}
	}
}

func TestVersionSentinelSurvivesGob(t *testing.T) {
	// store.Latest is MaxUint64; gob must carry it exactly.
	env := roundTrip(t, Envelope{Msg: &core.GetRequest{Version: store.Latest}})
	if env.Msg.(*core.GetRequest).Version != store.Latest {
		t.Error("Latest sentinel corrupted")
	}
}

func TestEmptyAndNilFieldsSurvive(t *testing.T) {
	env := roundTrip(t, Envelope{Msg: &core.PutRequest{Key: "", Value: nil}})
	got := env.Msg.(*core.PutRequest)
	if got.Key != "" || len(got.Value) != 0 {
		t.Errorf("empty fields = %#v", got)
	}
}

func TestStreamCarriesManyEnvelopes(t *testing.T) {
	// Persistent connections reuse one encoder; type info must only be
	// sent once and later envelopes still decode.
	Register()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for i := 0; i < 10; i++ {
		env := Envelope{From: 1, To: 2, Msg: &core.PutAck{ID: gossip.RequestID(i)}}
		if err := enc.Encode(&env); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	firstLen := buf.Len()
	dec := gob.NewDecoder(&buf)
	for i := 0; i < 10; i++ {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if env.Msg.(*core.PutAck).ID != gossip.RequestID(i) {
			t.Fatalf("envelope %d out of order", i)
		}
	}
	if firstLen == 0 {
		t.Fatal("nothing encoded")
	}
}
