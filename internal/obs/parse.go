// Exposition parsing: the validating counterpart of prom.go. Tests,
// the flasksd smoke test and flaskctl stats all parse scrapes through
// ParseExposition, so a malformed document fails loudly everywhere
// instead of only in a real Prometheus server's logs.
package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the full sample name, including histogram suffixes.
	Name string
	// Labels maps label names to unescaped values.
	Labels map[string]string
	// Value is the sample value (+Inf allowed on bucket bounds only
	// in the le label, never here — exposition values may still be
	// +Inf for gauges, so the parser accepts it).
	Value float64
}

// Family is one parsed metric family: its HELP/TYPE head and samples.
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

// ParseExposition parses a Prometheus text-format document and
// enforces the structural rules /metrics promises: every family
// declares # HELP then # TYPE exactly once before its samples, every
// sample belongs to the family declared above it, values parse, and
// histogram series are internally consistent (ascending le bounds,
// cumulative non-decreasing buckets, a +Inf bucket equal to _count,
// exactly one _sum and _count per label set). Families are returned
// keyed by name.
func ParseExposition(data []byte) (map[string]*Family, error) {
	families := map[string]*Family{}
	var cur *Family
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name, help, ok := strings.Cut(line[len("# HELP "):], " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed HELP", lineNo)
			}
			if _, dup := families[name]; dup {
				return nil, fmt.Errorf("line %d: family %s declared twice", lineNo, name)
			}
			cur = &Family{Name: name, Help: help}
			families[name] = cur
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line[len("# TYPE "):])
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			name, typ := fields[0], fields[1]
			if cur == nil || cur.Name != name {
				return nil, fmt.Errorf("line %d: TYPE %s without a preceding HELP", lineNo, name)
			}
			if cur.Type != "" {
				return nil, fmt.Errorf("line %d: family %s typed twice", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			cur.Type = typ
		case strings.HasPrefix(line, "#"):
			// Plain comment.
		default:
			s, err := parseSample(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if cur == nil || cur.Type == "" {
				return nil, fmt.Errorf("line %d: sample %s before its family's HELP/TYPE", lineNo, s.Name)
			}
			base := s.Name
			if cur.Type == "histogram" {
				for _, suf := range []string{"_bucket", "_sum", "_count"} {
					if t := strings.TrimSuffix(base, suf); t != base {
						base = t
						break
					}
				}
			}
			if base != cur.Name {
				return nil, fmt.Errorf("line %d: sample %s inside family %s", lineNo, s.Name, cur.Name)
			}
			cur.Samples = append(cur.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range families {
		if f.Type == "" {
			return nil, fmt.Errorf("family %s has HELP but no TYPE", f.Name)
		}
		switch f.Type {
		case "counter":
			for _, s := range f.Samples {
				if s.Value < 0 || math.IsNaN(s.Value) {
					return nil, fmt.Errorf("counter %s has value %v", f.Name, s.Value)
				}
			}
		case "histogram":
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

// validateHistogram checks each label set's series for internal
// consistency.
func validateHistogram(f *Family) error {
	type series struct {
		les     []float64
		buckets []float64
		sum     int
		count   float64
		counts  int
	}
	groups := map[string]*series{}
	group := func(labels map[string]string) *series {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var sig strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sig, "%s=%q,", k, labels[k])
		}
		g, ok := groups[sig.String()]
		if !ok {
			g = &series{}
			groups[sig.String()] = g
		}
		return g
	}
	for _, s := range f.Samples {
		g := group(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket without le label", f.Name)
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, le)
			}
			g.les = append(g.les, bound)
			g.buckets = append(g.buckets, s.Value)
		case strings.HasSuffix(s.Name, "_sum"):
			g.sum++
		case strings.HasSuffix(s.Name, "_count"):
			g.counts++
			g.count = s.Value
		}
	}
	for sig, g := range groups {
		where := f.Name
		if sig != "" {
			where += "{" + strings.TrimSuffix(sig, ",") + "}"
		}
		if g.sum != 1 || g.counts != 1 {
			return fmt.Errorf("%s: want exactly one _sum and _count, got %d/%d", where, g.sum, g.counts)
		}
		if len(g.buckets) == 0 {
			return fmt.Errorf("%s: histogram with no buckets", where)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("%s: le bounds not ascending", where)
			}
			if g.buckets[i] < g.buckets[i-1] {
				return fmt.Errorf("%s: bucket counts not cumulative", where)
			}
		}
		last := len(g.les) - 1
		if !math.IsInf(g.les[last], 1) {
			return fmt.Errorf("%s: missing +Inf bucket", where)
		}
		if g.buckets[last] != g.count {
			return fmt.Errorf("%s: +Inf bucket %v != _count %v", where, g.buckets[last], g.count)
		}
	}
	return nil
}

func isNameChar(c byte) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i]) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		rest, err = parseLabels(rest[1:], s.Labels)
		if err != nil {
			return s, fmt.Errorf("sample %s: %v", s.Name, err)
		}
	}
	rest = strings.TrimSpace(rest)
	valueStr, _, _ := strings.Cut(rest, " ") // drop the optional timestamp
	v, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, valueStr)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes `name="value",...}` into m and returns what
// follows the closing brace.
func parseLabels(in string, m map[string]string) (string, error) {
	for {
		in = strings.TrimLeft(in, " ")
		if strings.HasPrefix(in, "}") {
			return in[1:], nil
		}
		eq := strings.IndexByte(in, '=')
		if eq <= 0 {
			return "", fmt.Errorf("malformed labels")
		}
		name := strings.TrimSpace(in[:eq])
		in = in[eq+1:]
		if !strings.HasPrefix(in, `"`) {
			return "", fmt.Errorf("label %s: unquoted value", name)
		}
		in = in[1:]
		var val strings.Builder
		for {
			if in == "" {
				return "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := in[0]
			in = in[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if in == "" {
					return "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch in[0] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(in[0])
				}
				in = in[1:]
				continue
			}
			val.WriteByte(c)
		}
		if _, dup := m[name]; dup {
			return "", fmt.Errorf("label %s repeated", name)
		}
		m[name] = val.String()
		if strings.HasPrefix(in, ",") {
			in = in[1:]
		}
	}
}
