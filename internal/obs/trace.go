// Trace ring: a per-node lock-free journal of protocol round events.
//
// The control loop and the data-plane shard goroutines are the
// writers; /trace scrapes are the readers. The ring is a power-of-two
// slot array of atomic pointers: a writer claims a slot with one
// atomic add, builds the Event on its own stack, and publishes it with
// one pointer store — no lock, no reader coordination, and a slow
// scraper can never stall an event loop (it just misses overwritten
// slots). A nil *Ring is the disabled plane:
// every method is a no-op that allocates nothing, so trace calls stay
// on the hot path unconditionally and cost two compares when tracing
// is off (asserted by BenchmarkRingDisabled).
package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// TraceKind classifies one journal event.
type TraceKind uint8

const (
	// TracePutApply: a put (single or batch) was applied locally —
	// stored, or buffered in the coalescing window. Bytes is the value
	// size, Objects the batch size.
	TracePutApply TraceKind = iota + 1
	// TracePutRelay: a put was forwarded during routing. Peer is 0
	// for a global-phase flood (many receivers) or the target node id
	// for intra-slice relays.
	TracePutRelay
	// TraceGetServe: a get was answered from the local store; Bytes is
	// the value size.
	TraceGetServe
	// TraceGetRelay: a get was forwarded during routing.
	TraceGetRelay
	// TraceDeleteApply: a delete (single or batch) was applied
	// locally; Objects is the batch size.
	TraceDeleteApply
	// TraceDeleteRelay: a delete was forwarded during routing.
	TraceDeleteRelay
	// TraceAERound: one anti-entropy tick. Bytes is the digest bytes
	// charged during the tick, Objects the repair objects pushed from
	// it, Dur the tick's duration.
	TraceAERound
	// TraceShuffle: one peer-sampling shuffle tick; Dur is its
	// duration.
	TraceShuffle
	// TraceBootFetch: the bootstrap joiner requested a segment stream;
	// Seg is the segment id, Bytes the resume offset.
	TraceBootFetch
	// TraceBootSegment: the joiner verified and applied one whole
	// streamed segment.
	TraceBootSegment
)

var traceKindNames = map[TraceKind]string{
	TracePutApply:    "put_apply",
	TracePutRelay:    "put_relay",
	TraceGetServe:    "get_serve",
	TraceGetRelay:    "get_relay",
	TraceDeleteApply: "delete_apply",
	TraceDeleteRelay: "delete_relay",
	TraceAERound:     "ae_round",
	TraceShuffle:     "shuffle",
	TraceBootFetch:   "boot_fetch",
	TraceBootSegment: "boot_segment",
}

// String returns the snake_case event name used in /trace output.
func (k TraceKind) String() string {
	if s, ok := traceKindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Event is one journal entry. Field meaning varies by Kind (see the
// kind constants); unused fields stay zero and are omitted from JSON.
type Event struct {
	// Seq is the node-local publication order (dense, monotonic).
	Seq uint64 `json:"seq"`
	// Time is the wall-clock publication time in Unix nanoseconds.
	Time int64 `json:"time_unix_nano"`
	// Kind classifies the event; rendered as its snake_case name.
	Kind TraceKind `json:"-"`
	// TraceID stitches one client request across relay hops; zero on
	// protocol round events.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Key is the object key for data-path events.
	Key string `json:"key,omitempty"`
	// Peer is the counterpart node id, when there is exactly one.
	Peer uint64 `json:"peer,omitempty"`
	// Seg is the segment id on bootstrap events.
	Seg uint64 `json:"seg,omitempty"`
	// Shard is the 1-based id of the data-plane shard that journaled
	// the event; 0 (omitted) means a control-plane event.
	Shard uint64 `json:"shard,omitempty"`
	// Bytes and Objects are kind-specific volume operands.
	Bytes   uint64 `json:"bytes,omitempty"`
	Objects uint64 `json:"objects,omitempty"`
	// Dur is the event's duration, for events that span time.
	Dur time.Duration `json:"dur_nanos,omitempty"`
}

// Ring is the journal. Create with NewRing; a nil Ring is valid and
// drops everything.
type Ring struct {
	mask  uint64
	pos   atomic.Uint64
	slots []atomic.Pointer[Event]
}

// NewRing creates a ring holding the last n events, rounded up to a
// power of two (minimum 16). n <= 0 returns nil — the disabled ring.
func NewRing(n int) *Ring {
	if n <= 0 {
		return nil
	}
	size := 16
	for size < n {
		size <<= 1
	}
	return &Ring{mask: uint64(size - 1), slots: make([]atomic.Pointer[Event], size)}
}

// Add publishes one event, stamping Seq and (when unset) Time. Safe
// for any number of concurrent writers (the slot claim is one atomic
// add) and Snapshot readers; a nil receiver is a no-op. The publish step lives in its own function so
// the heap copy it forces (&ev escapes into the slot) is not hoisted
// into the nil fast path — disabled tracing must not allocate.
func (r *Ring) Add(ev Event) {
	if r == nil {
		return
	}
	r.publish(ev)
}

//go:noinline
func (r *Ring) publish(ev Event) {
	ev.Seq = r.pos.Add(1) - 1
	if ev.Time == 0 {
		ev.Time = time.Now().UnixNano()
	}
	r.slots[ev.Seq&r.mask].Store(&ev)
}

// Len returns how many events have ever been published (not how many
// the ring still holds). Nil-safe.
func (r *Ring) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.pos.Load()
}

// Snapshot copies the currently held events in publication order. A
// writer racing the copy can overwrite a slot mid-snapshot; the stale
// event is simply replaced by the newer one it published, never torn
// (slots hold immutable events behind atomic pointers). Nil-safe.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
