package obs

import (
	"os"
	"testing"

	"dataflasks/internal/leakcheck"
)

func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
