// Prometheus text exposition (format version 0.0.4), hand-rolled on
// the standard library: /metrics renders every node counter, the wire
// and bootstrap stats, the RESP gateway's per-command stats, and the
// store/event-loop gauges this plane introduced. The classic text
// format is trivial to emit correctly — HELP then TYPE then samples,
// one family at a time — and carrying a client library for it would
// be the only third-party dependency in the tree.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dataflasks/internal/metrics"
)

// metricNames lists every metric family /metrics can emit. The
// metricname analyzer (cmd/flaskscheck) requires each entry to appear
// in the documentation, and TestMetricNamesMatchExposition binds the
// table to the writer's actual output — so a family cannot be added,
// renamed or dropped without updating both this table and the docs.
var metricNames = [...]string{
	// Node counters: flasks_<counter>_total for every metrics.Counter
	// except the StoredObjects gauge.
	"flasks_msg_sent_total",
	"flasks_msg_recv_total",
	"flasks_msg_dropped_total",
	"flasks_pss_sent_total",
	"flasks_slice_sent_total",
	"flasks_discovery_sent_total",
	"flasks_data_sent_total",
	"flasks_antientropy_sent_total",
	"flasks_antientropy_digest_bytes_total",
	"flasks_antientropy_push_bytes_total",
	"flasks_antientropy_pushed_objects_total",
	"flasks_antientropy_corrupt_skipped_total",
	"flasks_aggregate_sent_total",
	"flasks_puts_served_total",
	"flasks_gets_served_total",
	"flasks_deletes_served_total",
	"flasks_coalesced_puts_total",
	"flasks_requests_relayed_total",
	"flasks_duplicates_suppressed_total",
	"flasks_wire_send_errors_total",
	"flasks_bootstrap_sent_total",
	"flasks_bootstrap_segments_total",
	"flasks_bootstrap_bytes_total",
	"flasks_bootstrap_chunks_rejected_total",
	"flasks_bootstrap_fallback_objects_total",
	// Node state gauges.
	"flasks_stored_objects",
	"flasks_slice",
	"flasks_ready",
	"flasks_bootstrap_done",
	"flasks_bootstrap_fell_back",
	// Wire codec and datagram control plane.
	"flasks_wire_encode_bytes_total",
	"flasks_wire_codec_fallbacks_total",
	"flasks_udp_datagrams_sent_total",
	"flasks_udp_datagrams_dropped_total",
	"flasks_udp_datagrams_oversize_total",
	// Event loop.
	"flasks_mailbox_depth",
	"flasks_mailbox_capacity",
	"flasks_mailbox_dropped_total",
	"flasks_transport_send_errors_total",
	"flasks_tick_duration_seconds",
	// Data-plane shards, labeled by shard.
	"flasks_shard_mailbox_depth",
	"flasks_shard_mailbox_capacity",
	"flasks_shard_mailbox_dropped_total",
	"flasks_shard_tick_duration_seconds",
	// Store engine.
	"flasks_store_segments",
	"flasks_store_live_bytes",
	"flasks_store_dead_bytes",
	"flasks_store_compaction_passes_total",
	// RESP gateway, labeled by cmd.
	"flasks_resp_commands_total",
	"flasks_resp_command_errors_total",
	"flasks_resp_command_duration_seconds",
	// Trace journal.
	"flasks_trace_events_total",
}

// histogramHelp is the shared tail of every histogram family's HELP
// text: the buckets are LatencyHistogram's power-of-two microsecond
// buckets, so any quantile read off them is an upper bound exact to
// within 2x.
const histogramHelp = "Power-of-two microsecond buckets rendered in seconds; " +
	"quantiles derived from them are upper bounds exact to within 2x."

// expo accumulates one exposition document.
type expo struct {
	w   io.Writer
	err error
}

func (e *expo) printf(format string, args ...interface{}) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// head emits the family's # HELP / # TYPE preamble.
func (e *expo) head(name, typ, help string) {
	e.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (e *expo) counter(name, help string, v uint64) {
	e.head(name, "counter", help)
	e.printf("%s %d\n", name, v)
}

func (e *expo) gauge(name, help string, v float64) {
	e.head(name, "gauge", help)
	e.printf("%s %s\n", name, formatFloat(v))
}

// histogram emits one labeled series of a histogram family. labels is
// either empty or a "name=\"value\"," prefix for the bucket label
// sets. The caller emits the family head once.
func (e *expo) histogram(name, labels string, h *metrics.LatencyHistogram) {
	bare := strings.TrimSuffix(labels, ",")
	suffix := func(kind string) string {
		if bare == "" {
			return name + kind
		}
		return name + kind + "{" + bare + "}"
	}
	b := h.Buckets()
	cum := uint64(0)
	for i := 0; i < metrics.NumLatencyBuckets-1; i++ {
		cum += b[i]
		le := formatFloat(metrics.BucketBound(i).Seconds())
		e.printf("%s_bucket{%sle=%q} %d\n", name, labels, le, cum)
	}
	// The last bucket absorbs every larger observation: +Inf.
	cum += b[metrics.NumLatencyBuckets-1]
	e.printf("%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	e.printf("%s %s\n", suffix("_sum"), formatFloat(float64(h.SumMicroseconds())/1e6))
	// _count is derived from the same bucket snapshot as +Inf, so the
	// two agree even while observers race the scrape.
	e.printf("%s %d\n", suffix("_count"), cum)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// boolGauge renders a bool as the 0/1 gauge value convention.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// counterHelp is the HELP text for the families derived from
// metrics.Counter; the per-counter semantics live in the docs table
// the metricname analyzer points at.
func counterHelp(base string) string {
	return "DataFlasks node counter " + base +
		" (see the counters table in docs/ARCHITECTURE.md)."
}

// WriteMetrics renders the full exposition document for src. Sources
// fields may be nil; their families are omitted (except the RESP
// families, whose heads are emitted whenever the registry exists so
// scrapers see the family before the first command arrives).
func WriteMetrics(w io.Writer, src Sources) error {
	e := &expo{w: w}

	if src.Status != nil {
		st := src.Status()
		for c := 0; c < metrics.NumCounters; c++ {
			if metrics.Counter(c) == metrics.StoredObjects {
				continue
			}
			base := metrics.Counter(c).String()
			e.counter("flasks_"+base+"_total", counterHelp(base), st.Counters[c])
		}
		e.gauge("flasks_stored_objects",
			"Objects currently held by the local store.",
			float64(st.Counters[metrics.StoredObjects]))
		e.gauge("flasks_slice",
			"Slice (replication group) this node believes it belongs to; -1 before assignment.",
			float64(st.Slice))
		e.gauge("flasks_ready",
			"1 once the slice is assigned and bootstrap finished (what /readyz serves).",
			boolGauge(st.Ready))
		e.gauge("flasks_bootstrap_done",
			"1 once startup bootstrap finished, by segment streaming or fallback.",
			boolGauge(st.BootstrapDone))
		e.gauge("flasks_bootstrap_fell_back",
			"1 when bootstrap gave up on segment streaming and relied on anti-entropy.",
			boolGauge(st.BootstrapFellBack))
	}

	if src.Wire != nil {
		ws := src.Wire()
		e.counter("flasks_wire_encode_bytes_total",
			"Frame bytes produced by the wire codec (TCP frames and UDP payloads).", ws.EncodeBytes)
		e.counter("flasks_wire_codec_fallbacks_total",
			"Connections that negotiated down to the gob compat codec.", ws.CodecFallbacks)
		e.counter("flasks_udp_datagrams_sent_total",
			"Datagrams handed to the UDP control-plane socket.", ws.UDPSent)
		e.counter("flasks_udp_datagrams_dropped_total",
			"Datagrams lost before the socket or undecodable on arrival.", ws.UDPDropped)
		e.counter("flasks_udp_datagrams_oversize_total",
			"Control messages bounced to TCP because their frame exceeded the datagram cap.", ws.UDPOversize)
	}

	if src.MailboxDepth != nil {
		e.gauge("flasks_mailbox_depth",
			"Messages queued in the event-loop mailbox right now.",
			float64(src.MailboxDepth()))
	}
	if src.MailboxCapacity > 0 {
		e.gauge("flasks_mailbox_capacity",
			"Event-loop mailbox capacity; depth at capacity means producers are dropping.",
			float64(src.MailboxCapacity))
	}
	if src.MailboxDropped != nil {
		e.counter("flasks_mailbox_dropped_total",
			"Messages dropped by transport producers because the mailbox was full.",
			src.MailboxDropped())
	}
	if src.SendErrors != nil {
		e.counter("flasks_transport_send_errors_total",
			"Sends the node's accounting sender saw fail.", src.SendErrors())
	}

	if src.TickDur != nil {
		name := "flasks_tick_duration_seconds"
		e.head(name, "histogram",
			"Event-loop round (Tick) duration. "+histogramHelp)
		e.histogram(name, "", src.TickDur)
	}

	if src.Shards > 0 && src.ShardDepth != nil {
		name := "flasks_shard_mailbox_depth"
		e.head(name, "gauge",
			"Messages queued in each data-plane shard's mailbox right now, by shard.")
		for i := 0; i < src.Shards; i++ {
			e.printf("%s{shard=\"%d\"} %d\n", name, i, src.ShardDepth(i))
		}
	}
	if src.Shards > 0 && src.ShardCapacity > 0 {
		e.gauge("flasks_shard_mailbox_capacity",
			"Per-shard mailbox capacity; a shard's depth at capacity means the dispatcher is dropping.",
			float64(src.ShardCapacity))
	}
	if src.Shards > 0 && src.ShardDropped != nil {
		e.counter("flasks_shard_mailbox_dropped_total",
			"Data messages dropped because their shard's mailbox was full, summed across shards.",
			src.ShardDropped())
	}
	if src.Shards > 0 && src.ShardTickDur != nil {
		name := "flasks_shard_tick_duration_seconds"
		e.head(name, "histogram",
			"Per-shard tick (coalesce window flush) duration, by shard. "+histogramHelp)
		for i := 0; i < src.Shards; i++ {
			if h := src.ShardTickDur(i); h != nil {
				e.histogram(name, fmt.Sprintf("shard=\"%d\",", i), h)
			}
		}
	}

	if src.Store != nil {
		ss := src.Store()
		e.gauge("flasks_store_segments",
			"Log-engine segment files, including the active one.", float64(ss.Segments))
		e.gauge("flasks_store_live_bytes",
			"Bytes of records the store index still points at.", float64(ss.LiveBytes))
		e.gauge("flasks_store_dead_bytes",
			"Bytes awaiting compaction (overwritten, deleted or tombstone records).", float64(ss.DeadBytes))
		e.counter("flasks_store_compaction_passes_total",
			"Compaction passes that found candidate segments and rewrote them.", ss.CompactionPasses)
	}

	if src.RESP != nil {
		names := src.RESP.Names()
		e.head("flasks_resp_commands_total", "counter",
			"RESP gateway commands served, by command.")
		for _, n := range names {
			e.printf("flasks_resp_commands_total{cmd=%q} %d\n",
				escapeLabel(n), src.RESP.Stat(n).Calls.Load())
		}
		e.head("flasks_resp_command_errors_total", "counter",
			"RESP gateway commands that answered an error, by command.")
		for _, n := range names {
			e.printf("flasks_resp_command_errors_total{cmd=%q} %d\n",
				escapeLabel(n), src.RESP.Stat(n).Errors.Load())
		}
		e.head("flasks_resp_command_duration_seconds", "histogram",
			"RESP gateway command latency, by command. "+histogramHelp)
		for _, n := range names {
			labels := fmt.Sprintf("cmd=%q,", escapeLabel(n))
			e.histogram("flasks_resp_command_duration_seconds", labels, &src.RESP.Stat(n).Latency)
		}
	}

	if src.Trace != nil {
		e.counter("flasks_trace_events_total",
			"Events published to the /trace journal since start.", src.Trace.Len())
	}

	return e.err
}

// MetricNames returns a sorted copy of the full family inventory.
func MetricNames() []string {
	out := make([]string, len(metricNames))
	copy(out, metricNames[:])
	sort.Strings(out)
	return out
}
