package obs

import (
	"sync"
	"testing"
	"time"
)

func TestRingNilIsDisabled(t *testing.T) {
	var r *Ring
	r.Add(Event{Kind: TracePutApply})
	if r.Len() != 0 {
		t.Error("nil ring has events")
	}
	if r.Snapshot() != nil {
		t.Error("nil ring snapshots non-nil")
	}
	if NewRing(0) != nil || NewRing(-1) != nil {
		t.Error("NewRing(<=0) must return the disabled (nil) ring")
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 40; i++ {
		r.Add(Event{Kind: TraceShuffle, Bytes: uint64(i)})
	}
	if r.Len() != 40 {
		t.Fatalf("Len = %d, want 40", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot holds %d events, want 16", len(snap))
	}
	for i, ev := range snap {
		if want := uint64(24 + i); ev.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest events must be overwritten in order)", i, ev.Seq, want)
		}
		if ev.Bytes != ev.Seq {
			t.Fatalf("event %d payload torn: Bytes=%d", ev.Seq, ev.Bytes)
		}
		if ev.Time == 0 {
			t.Fatalf("event %d missing publication time", ev.Seq)
		}
	}
}

func TestRingKeepsCallerTimestamp(t *testing.T) {
	r := NewRing(16)
	r.Add(Event{Kind: TraceAERound, Time: 12345})
	if got := r.Snapshot()[0].Time; got != 12345 {
		t.Fatalf("caller timestamp overwritten: %d", got)
	}
}

// TestRingConcurrentSnapshot runs one writer against snapshotting
// readers under the race detector: snapshots must never tear and must
// stay sorted by Seq.
func TestRingConcurrentSnapshot(t *testing.T) {
	r := NewRing(64)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := r.Snapshot()
				for j := 1; j < len(snap); j++ {
					if snap[j].Seq <= snap[j-1].Seq {
						t.Error("snapshot out of order")
						return
					}
					if snap[j].Bytes != snap[j].Seq {
						t.Errorf("torn event: seq %d bytes %d", snap[j].Seq, snap[j].Bytes)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		r.Add(Event{Kind: TracePutApply, Bytes: uint64(i), Time: 1})
	}
	close(done)
	wg.Wait()
	if r.Len() != 5000 {
		t.Fatalf("Len = %d", r.Len())
	}
}

// TestRingDisabledAllocs pins the acceptance requirement: with tracing
// disabled (nil ring), the hot-path Add must not allocate — the event
// loop calls it unconditionally on every put, get and protocol round.
func TestRingDisabledAllocs(t *testing.T) {
	var r *Ring
	allocs := testing.AllocsPerRun(1000, func() {
		r.Add(Event{Kind: TracePutApply, TraceID: 7, Key: "k", Bytes: 100, Dur: time.Second})
	})
	if allocs != 0 {
		t.Fatalf("disabled ring allocates %.1f times per Add, want 0", allocs)
	}
}

func BenchmarkRingDisabled(b *testing.B) {
	var r *Ring
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(Event{Kind: TracePutApply, TraceID: 7, Key: "k", Bytes: 100})
	}
}

func BenchmarkRingEnabled(b *testing.B) {
	r := NewRing(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(Event{Kind: TracePutApply, TraceID: 7, Key: "k", Bytes: 100})
	}
}
