// Package obs is the node's opt-in HTTP observability plane: /metrics
// in Prometheus text exposition format, /healthz and /readyz probes,
// the /trace protocol-event journal, and net/http/pprof under
// /debug/pprof/.
//
// The plane never touches live event-loop state. NodeMetrics is plain
// counters owned by one goroutine, so the node publishes an immutable
// Status snapshot each tick (and on readiness flips) and every
// handler reads through Sources: snapshot closures, atomic stats
// types (WireStats, CommandStats, LatencyHistogram) and the lock-free
// trace ring. A scrape can therefore never stall — or race — the
// protocol.
package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"dataflasks/internal/metrics"
	"dataflasks/internal/store"
)

// Status is the node state published once per event-loop tick (and
// whenever readiness flips). It is immutable after publication.
type Status struct {
	// Counters is the tick's NodeMetrics snapshot.
	Counters [metrics.NumCounters]uint64
	// Slice is the node's slice, -1 before assignment.
	Slice int32
	// BootstrapDone is true once startup bootstrap finished, whether
	// by segment streaming or by falling back to anti-entropy.
	BootstrapDone bool
	// BootstrapFellBack is true when bootstrap gave up on segment
	// streaming.
	BootstrapFellBack bool
	// Ready is the /readyz verdict: slice assigned and bootstrap done.
	Ready bool
	// Reason says why the node is not ready; empty when Ready.
	Reason string
}

// Sources wires the plane to one node. Every field except NodeID may
// be nil/zero; the corresponding families and endpoints degrade
// gracefully (nil Status = never ready, empty counters).
type Sources struct {
	// NodeID identifies the node in /trace output.
	NodeID uint64
	// Status returns the latest published Status snapshot.
	Status func() Status
	// Wire snapshots the node's wire/datagram counters.
	Wire func() metrics.WireSnapshot
	// RESP is the gateway's per-command registry, when one runs.
	RESP *metrics.CommandStats
	// TickDur is the event loop's per-tick duration histogram.
	TickDur *metrics.LatencyHistogram
	// Store snapshots the engine's physical stats (nil when the
	// engine implements no store.StatsProvider).
	Store func() store.Stats
	// MailboxDepth reads the event-loop mailbox's current depth.
	MailboxDepth func() int
	// MailboxCapacity is the mailbox's fixed capacity.
	MailboxCapacity int
	// MailboxDropped reads the producer-side mailbox drop counter.
	MailboxDropped func() uint64
	// SendErrors reads the accounting sender's error counter.
	SendErrors func() uint64
	// Shards is the data-plane shard count; with ShardDepth/ShardTickDur
	// it drives the per-shard flasks_shard_* families. Zero omits them.
	Shards int
	// ShardDepth reads shard i's current mailbox depth.
	ShardDepth func(i int) int
	// ShardCapacity is each shard mailbox's fixed capacity.
	ShardCapacity int
	// ShardDropped reads the messages dropped on shard-mailbox
	// overflow, summed across shards.
	ShardDropped func() uint64
	// ShardTickDur returns shard i's per-tick (coalesce flush) duration
	// histogram.
	ShardTickDur func(i int) *metrics.LatencyHistogram
	// Trace is the protocol-event journal; nil disables /trace.
	Trace *Ring
}

// Server serves the plane. Create with NewServer, bind with Listen.
type Server struct {
	src  Sources
	mux  *http.ServeMux
	srv  *http.Server
	addr string
}

// NewServer builds the plane's handler tree for one node.
func NewServer(src Sources) *Server {
	s := &Server{src: src, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler exposes the mux for in-process tests.
func (s *Server) Handler() http.Handler { return s.mux }

// Listen binds addr and serves until Close, returning the bound
// address (addr may use port 0).
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.addr = ln.Addr().String()
	s.srv = &http.Server{Handler: s.mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s.addr, nil
}

// Addr returns the bound address, empty before Listen.
func (s *Server) Addr() string { return s.addr }

// Close stops serving and severs open connections.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteMetrics(w, s.src)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness is "the process serves HTTP": the event loop publishes
	// through snapshots, so a wedged loop is a readiness (staleness)
	// problem, not a liveness one.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var st Status
	if s.src.Status != nil {
		st = s.src.Status()
	} else {
		st.Reason = "no status published"
	}
	if !st.Ready {
		http.Error(w, "not ready: "+st.Reason, http.StatusServiceUnavailable)
		return
	}
	_, _ = w.Write([]byte("ready\n"))
}

// traceDump is the /trace response body.
type traceDump struct {
	Node   uint64           `json:"node"`
	Events []traceEventJSON `json:"events"`
}

// traceEventJSON renders an Event with its kind as a string.
type traceEventJSON struct {
	Kind string `json:"kind"`
	Event
}

// handleTrace dumps the journal, oldest first. ?id=<trace id> keeps
// only that request's events — what flaskctl trace uses to stitch one
// put across hops.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	var filter uint64
	if v := r.URL.Query().Get("id"); v != "" {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad id: "+err.Error(), http.StatusBadRequest)
			return
		}
		filter = id
	}
	dump := traceDump{Node: s.src.NodeID, Events: []traceEventJSON{}}
	for _, ev := range s.src.Trace.Snapshot() {
		if filter != 0 && ev.TraceID != filter {
			continue
		}
		dump.Events = append(dump.Events, traceEventJSON{Kind: ev.Kind.String(), Event: ev})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(dump)
}
