package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestReadyzFlips pins the readiness contract: 503 with a reason while
// the published status is not ready, 200 the moment it is.
func TestReadyzFlips(t *testing.T) {
	var status atomic.Pointer[Status]
	status.Store(&Status{Slice: -1, Reason: "slice not yet assigned"})
	s := NewServer(Sources{Status: func() Status { return *status.Load() }})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body, _ := get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "slice not yet assigned") {
		t.Fatalf("not-ready readyz = %d %q", code, body)
	}
	status.Store(&Status{Slice: 2, BootstrapDone: true, Ready: true})
	code, body, _ = get(t, srv, "/readyz")
	if code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("ready readyz = %d %q", code, body)
	}
	if code, _, _ := get(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatal("healthz must always answer 200")
	}
}

func TestMetricsContentTypeAndParse(t *testing.T) {
	s := NewServer(fullSources(nil, nil, nil))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	if _, err := ParseExposition([]byte(body)); err != nil {
		t.Fatalf("served exposition invalid: %v", err)
	}
}

func TestTraceEndpointFilters(t *testing.T) {
	ring := NewRing(16)
	ring.Add(Event{Kind: TracePutApply, TraceID: 42, Key: "a"})
	ring.Add(Event{Kind: TracePutRelay, TraceID: 42})
	ring.Add(Event{Kind: TraceShuffle})
	s := NewServer(Sources{NodeID: 9, Trace: ring})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var dump struct {
		Node   uint64 `json:"node"`
		Events []struct {
			Kind    string `json:"kind"`
			TraceID uint64 `json:"trace_id"`
		} `json:"events"`
	}
	_, body, _ := get(t, srv, "/trace")
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Node != 9 || len(dump.Events) != 3 {
		t.Fatalf("unfiltered dump: node=%d events=%d", dump.Node, len(dump.Events))
	}
	if dump.Events[0].Kind != "put_apply" {
		t.Fatalf("kind rendered as %q", dump.Events[0].Kind)
	}

	_, body, _ = get(t, srv, "/trace?id=42")
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != 2 {
		t.Fatalf("filtered dump has %d events, want 2", len(dump.Events))
	}
	for _, ev := range dump.Events {
		if ev.TraceID != 42 {
			t.Fatalf("foreign event in filtered dump: %+v", ev)
		}
	}

	if code, _, _ := get(t, srv, "/trace?id=notanumber"); code != http.StatusBadRequest {
		t.Fatal("bad trace id must 400")
	}
}

func TestTraceEndpointDisabledRing(t *testing.T) {
	s := NewServer(Sources{NodeID: 9})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/trace")
	if code != http.StatusOK {
		t.Fatalf("trace with nil ring = %d", code)
	}
	if !strings.Contains(body, `"events": []`) {
		t.Fatalf("nil-ring dump should have an empty events array: %s", body)
	}
}

func TestPprofMounted(t *testing.T) {
	s := NewServer(Sources{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index = %d", code)
	}
}

func TestListenAndClose(t *testing.T) {
	s := NewServer(Sources{})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != addr || addr == "" {
		t.Fatalf("addr %q vs %q", s.Addr(), addr)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}
