package obs

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dataflasks/internal/metrics"
	"dataflasks/internal/store"
)

// fullSources populates every Sources field so WriteMetrics emits its
// entire family inventory.
func fullSources(tick *metrics.LatencyHistogram, resp *metrics.CommandStats, ring *Ring) Sources {
	var st Status
	for i := range st.Counters {
		st.Counters[i] = uint64(i + 1)
	}
	st.Slice = 3
	st.BootstrapDone = true
	st.BootstrapFellBack = true
	st.Ready = true
	return Sources{
		NodeID: 7,
		Status: func() Status { return st },
		Wire: func() metrics.WireSnapshot {
			return metrics.WireSnapshot{EncodeBytes: 1, CodecFallbacks: 2, UDPSent: 3, UDPDropped: 4, UDPOversize: 5}
		},
		RESP:    resp,
		TickDur: tick,
		Store: func() store.Stats {
			return store.Stats{Segments: 2, LiveBytes: 100, DeadBytes: 50, CompactionPasses: 1}
		},
		MailboxDepth:    func() int { return 6 },
		MailboxCapacity: 1024,
		MailboxDropped:  func() uint64 { return 7 },
		SendErrors:      func() uint64 { return 8 },
		Shards:          2,
		ShardDepth:      func(i int) int { return i },
		ShardCapacity:   256,
		ShardDropped:    func() uint64 { return 9 },
		ShardTickDur:    func(i int) *metrics.LatencyHistogram { return tick },
		Trace:           ring,
	}
}

// TestExpositionCompleteAndConformant is the conformance test: a fully
// populated scrape must parse under the strict exposition validator,
// and the families it declares must be exactly the metricNames
// inventory the analyzer holds against the docs.
func TestExpositionCompleteAndConformant(t *testing.T) {
	tick := &metrics.LatencyHistogram{}
	tick.Observe(3 * time.Microsecond)
	tick.Observe(90 * time.Millisecond)
	resp := metrics.NewCommandStats()
	resp.Stat("get").Observe(time.Millisecond, false)
	resp.Stat("set").Observe(2*time.Millisecond, true)
	ring := NewRing(16)
	ring.Add(Event{Kind: TraceShuffle})

	var buf bytes.Buffer
	if err := WriteMetrics(&buf, fullSources(tick, resp, ring)); err != nil {
		t.Fatal(err)
	}
	families, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	for _, want := range MetricNames() {
		if _, ok := families[want]; !ok {
			t.Errorf("family %s in metricNames but absent from a full scrape", want)
		}
	}
	for got := range families {
		if !inNames(got) {
			t.Errorf("family %s emitted but missing from metricNames (the analyzer cannot hold it against the docs)", got)
		}
	}
	// The histogram HELP must state the quantile error bound.
	if f := families["flasks_tick_duration_seconds"]; !strings.Contains(f.Help, "2x") {
		t.Errorf("histogram HELP does not document the 2x quantile error bound: %q", f.Help)
	}
	// Labeled RESP series carry their command.
	found := false
	for _, s := range families["flasks_resp_commands_total"].Samples {
		if s.Labels["cmd"] == "get" && s.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Error("flasks_resp_commands_total{cmd=\"get\"} not exported")
	}
}

func inNames(name string) bool {
	for _, n := range metricNames {
		if n == name {
			return true
		}
	}
	return false
}

// TestExpositionCountersMonotonic scrapes twice across counter
// increments: no counter family may decrease.
func TestExpositionCountersMonotonic(t *testing.T) {
	tick := &metrics.LatencyHistogram{}
	resp := metrics.NewCommandStats()
	ring := NewRing(16)
	src := fullSources(tick, resp, ring)

	scrape := func() map[string]*Family {
		var buf bytes.Buffer
		if err := WriteMetrics(&buf, src); err != nil {
			t.Fatal(err)
		}
		fams, err := ParseExposition(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return fams
	}
	first := scrape()
	tick.Observe(time.Millisecond)
	resp.Stat("get").Observe(time.Millisecond, false)
	ring.Add(Event{Kind: TraceShuffle})
	second := scrape()
	for name, f := range first {
		if f.Type != "counter" {
			continue
		}
		var a, b float64
		for _, s := range f.Samples {
			a += s.Value
		}
		for _, s := range second[name].Samples {
			b += s.Value
		}
		if b < a {
			t.Errorf("counter %s decreased across scrapes: %v -> %v", name, a, b)
		}
	}
}

// TestExpositionHistogramUnderConcurrentObserve pins the histogram
// invariant readers depend on: even while writers observe, every
// scrape's +Inf bucket equals its _count (both derive from one bucket
// snapshot), so the strict validator passes on all of them.
func TestExpositionHistogramUnderConcurrentObserve(t *testing.T) {
	tick := &metrics.LatencyHistogram{}
	resp := metrics.NewCommandStats()
	src := fullSources(tick, resp, NewRing(16))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tick.Observe(time.Duration(seed+i%1000) * time.Microsecond)
				resp.Stat("get").Observe(time.Duration(i%100)*time.Microsecond, false)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := WriteMetrics(&buf, src); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseExposition(buf.Bytes()); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("scrape %d failed validation under concurrent observes: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestExpositionRESPHeadsWithoutTraffic: a registry with no commands
// yet must still declare its families, so scrapers learn them before
// the first command arrives.
func TestExpositionRESPHeadsWithoutTraffic(t *testing.T) {
	var buf bytes.Buffer
	src := Sources{RESP: metrics.NewCommandStats()}
	if err := WriteMetrics(&buf, src); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flasks_resp_commands_total", "flasks_resp_command_errors_total", "flasks_resp_command_duration_seconds"} {
		if _, ok := fams[want]; !ok {
			t.Errorf("family %s absent from a zero-traffic scrape", want)
		}
	}
}

// TestExpositionBucketBounds checks the le values against the
// histogram's contract: bound i is 2^i microseconds, rendered in
// seconds, ending at +Inf.
func TestExpositionBucketBounds(t *testing.T) {
	tick := &metrics.LatencyHistogram{}
	tick.Observe(time.Microsecond)
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, Sources{TickDur: tick}); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var les []float64
	for _, s := range fams["flasks_tick_duration_seconds"].Samples {
		if strings.HasSuffix(s.Name, "_bucket") {
			les = append(les, mustFloat(t, s.Labels["le"]))
		}
	}
	if len(les) != metrics.NumLatencyBuckets {
		t.Fatalf("%d buckets exported, want %d", len(les), metrics.NumLatencyBuckets)
	}
	if les[0] != metrics.BucketBound(0).Seconds() {
		t.Errorf("first bound %v, want %v", les[0], metrics.BucketBound(0).Seconds())
	}
	if !math.IsInf(les[len(les)-1], 1) {
		t.Error("last bucket is not +Inf")
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad le %q: %v", s, err)
	}
	return v
}
