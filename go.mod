module dataflasks

go 1.22
