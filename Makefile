# Mirrors .github/workflows/ci.yml so local runs and CI are identical.

GO ?= go

.PHONY: all build examples test race bench smoke fmt vet lint ci

all: build

build:
	$(GO) build ./...

examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...
	$(GO) test -run TestFlasksdRESPGatewaySmoke -count=1 ./cmd/flasksd

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

smoke:
	$(GO) run ./cmd/flaskbench -exp compact -quick
	$(GO) run ./cmd/flaskbench -exp pipeline -quick
	$(GO) run ./cmd/flaskbench -exp resp -quick
	$(GO) run ./cmd/flaskbench -exp churn -quick -json BENCH_churn.json

lint:
	$(GO) run ./cmd/repolint README.md ROADMAP.md PAPER.md PAPERS.md CHANGES.md docs/ARCHITECTURE.md .

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet lint build examples race bench smoke
