# Mirrors .github/workflows/ci.yml so local runs and CI are identical.

GO ?= go

# Pinned third-party analyzer versions; CI installs exactly these, and
# the local lint target tells you the same pin when the tool is absent.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build examples test race bench smoke fmt vet check lint ci

all: build

build:
	$(GO) build ./...

examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...
	$(GO) test -run TestFlasksdRESPGatewaySmoke -count=1 ./cmd/flasksd

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

smoke:
	$(GO) run ./cmd/flaskbench -exp compact -quick
	$(GO) run ./cmd/flaskbench -exp pipeline -quick
	$(GO) run ./cmd/flaskbench -exp resp -quick
	$(GO) run ./cmd/flaskbench -exp churn -quick -json BENCH_churn.json
	$(GO) run ./cmd/flaskbench -exp bootstrap -quick -json BENCH_bootstrap.json

# check runs the repo's own invariant analyzers (wire table, event
# loop, ctx plumbing, lock holds, counter names). Zero findings or the
# build fails.
check:
	$(GO) run ./cmd/flaskscheck ./...

# lint = repolint + flaskscheck always, plus staticcheck/govulncheck
# when installed (they need network to install, so offline runs skip
# them loudly instead of failing).
lint: check
	$(GO) run ./cmd/repolint README.md ROADMAP.md PAPER.md PAPERS.md CHANGES.md docs/ARCHITECTURE.md .
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet lint build examples race bench smoke
