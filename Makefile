# Mirrors .github/workflows/ci.yml so local runs and CI are identical.

GO ?= go

.PHONY: all build test race bench fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build race bench
