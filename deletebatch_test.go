package dataflasks_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dataflasks"
)

// TestDeleteBatchEndToEnd writes objects across every slice, deletes
// them all through one DeleteBatch call (grouped per slice onto the
// batched wire path) and verifies replicas drop them — plus that the
// applied count reflects how many keys actually existed.
func TestDeleteBatchEndToEnd(t *testing.T) {
	c := startStaticCluster(t, 12, 2)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	time.Sleep(200 * time.Millisecond) // let views fill

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const n = 16
	items := make([]dataflasks.KeyVersion, 0, n)
	retry := []dataflasks.OpOption{
		dataflasks.WithTimeout(250 * time.Millisecond),
		dataflasks.WithRetries(20),
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("delbatch%04d", i)
		if err := cl.Put(ctx, key, 1, []byte(key), retry...); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		// Half the keys get a second version: AllVersions must remove
		// both, Latest alone would leave v1 behind.
		version := dataflasks.Latest
		if i%2 == 0 {
			if err := cl.Put(ctx, key, 2, []byte(key), retry...); err != nil {
				t.Fatalf("put %s v2: %v", key, err)
			}
			version = dataflasks.AllVersions
		}
		items = append(items, dataflasks.KeyVersion{Key: key, Version: version})
	}
	// Two keys that never existed: they must not inflate the count.
	items = append(items,
		dataflasks.KeyVersion{Key: "delbatch-ghost-a", Version: dataflasks.Latest},
		dataflasks.KeyVersion{Key: "delbatch-ghost-b", Version: 7})

	applied, err := cl.DeleteBatch(ctx, items, retry...)
	if err != nil {
		t.Fatalf("DeleteBatch: %v", err)
	}
	// The acking replica held at least the entry-point copy of each
	// real key (it stored them synchronously on the put path); ghosts
	// contribute nothing.
	if applied == 0 || applied > n {
		t.Fatalf("applied = %d, want in (0, %d]", applied, n)
	}

	// Deletes disseminate intra-slice epidemically; all replicas must
	// converge to zero copies. A delete can race the tail of a put's
	// own flood (a late relay re-stores the object), so re-issue the
	// batch if copies persist — eventual semantics, as a real client
	// would.
	deadline := time.Now().Add(30 * time.Second)
	for tries := 0; ; {
		remaining := 0
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("delbatch%04d", i)
			remaining += c.ReplicaCount(key, 1) + c.ReplicaCount(key, 2)
		}
		if remaining == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d replica copies survived the batch delete", remaining)
		}
		time.Sleep(50 * time.Millisecond)
		if tries++; tries%20 == 0 { // every ~1s of persistence
			if _, err := cl.DeleteBatch(ctx, items, retry...); err != nil {
				t.Fatalf("re-issued DeleteBatch: %v", err)
			}
		}
	}
}

// TestDeleteBatchAsyncGrouping checks the per-slice grouping contract:
// one future per distinct target slice, in first-appearance order.
func TestDeleteBatchAsyncGrouping(t *testing.T) {
	c := startStaticCluster(t, 8, 4)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	time.Sleep(100 * time.Millisecond)

	// 40 keys over 4 slices must form at most 4 groups.
	items := make([]dataflasks.KeyVersion, 0, 40)
	for i := 0; i < 40; i++ {
		items = append(items, dataflasks.KeyVersion{
			Key:     fmt.Sprintf("group%04d", i),
			Version: dataflasks.Latest,
		})
	}
	ops := cl.DeleteBatchAsync(items, dataflasks.WithFireAndForget())
	if len(ops) == 0 || len(ops) > 4 {
		t.Fatalf("got %d groups, want 1..4 (one per target slice)", len(ops))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, op := range ops {
		if err := op.Wait(ctx); err != nil {
			t.Fatalf("fire-and-forget group: %v", err)
		}
	}
}
