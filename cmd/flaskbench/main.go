// Command flaskbench regenerates every figure of the paper's
// evaluation (§VI) plus this reproduction's extension experiments, on
// the deterministic discrete-event simulator.
//
//	flaskbench -exp fig3            # paper Figure 3
//	flaskbench -exp fig4            # paper Figure 4
//	flaskbench -exp all             # everything
//	flaskbench -exp fig3 -quick     # reduced sweep for smoke runs
//
// Experiments: fig3 fig4 slicing correlated churn repair lb dht pss
// fanout reconfig putflood store.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"dataflasks/internal/core"
	"dataflasks/internal/lab"
	"dataflasks/internal/store"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (fig3, fig4, slicing, correlated, churn, repair, lb, dht, pss, fanout, reconfig, putflood, store, all)")
		seed  = flag.Uint64("seed", 42, "simulation seed")
		quick = flag.Bool("quick", false, "reduced scales for smoke runs")
		ns    = flag.String("ns", "", "override node sweep, e.g. 500,1000,2000")
	)
	flag.Parse()

	sweep := lab.DefaultNs
	if *quick {
		sweep = []int{200, 400, 600}
	}
	if *ns != "" {
		sweep = parseNs(*ns)
	}

	runners := map[string]func(){
		"fig3":       func() { runFig3(sweep, *seed, *quick) },
		"fig4":       func() { runFig4(sweep, *seed, *quick) },
		"slicing":    func() { runSlicing(*seed, *quick) },
		"correlated": func() { runCorrelated(*seed, *quick) },
		"churn":      func() { runChurn(*seed, *quick) },
		"repair":     func() { runRepair(*seed, *quick) },
		"lb":         func() { runLB(*seed, *quick) },
		"dht":        func() { runDHT(*seed, *quick) },
		"pss":        func() { runPSS(*seed, *quick) },
		"fanout":     func() { runFanout(*seed, *quick) },
		"reconfig":   func() { runReconfig(*seed, *quick) },
		"putflood":   func() { runPutFlood(*seed, *quick) },
		"store":      func() { runStore(*quick) },
	}
	order := []string{"fig3", "fig4", "slicing", "correlated", "churn", "repair", "lb", "dht", "pss", "fanout", "reconfig", "putflood", "store"}

	if *exp == "all" {
		for _, name := range order {
			runners[name]()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "flaskbench: unknown experiment %q (want one of %s, all)\n",
			*exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	run()
}

func parseNs(s string) []int {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "flaskbench: bad -ns element %q\n", p)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func header(title string) func() {
	fmt.Printf("\n=== %s ===\n", title)
	start := time.Now()
	return func() { fmt.Printf("--- done in %s\n", time.Since(start).Round(time.Millisecond)) }
}

func runFig3(ns []int, seed uint64, quick bool) {
	done := header("Figure 3: avg messages per node, constant 10 slices (paper §VI)")
	defer done()
	slices := 10
	if quick {
		slices = 5
	}
	res := lab.Figure3(lab.FigureOptions{Ns: ns, Slices: slices, Seed: seed})
	printFigure(res)
}

func runFig4(ns []int, seed uint64, quick bool) {
	done := header("Figure 4: avg messages per node, slices ∝ nodes (paper §VI)")
	defer done()
	rf := 50
	if quick {
		rf = 40
	}
	res := lab.Figure4(lab.FigureOptions{Ns: ns, ReplicationFactor: rf, Seed: seed})
	printFigure(res)
}

func printFigure(res lab.FigureResult) {
	fmt.Printf("%8s %8s %14s %12s %10s %12s %6s %6s\n",
		"N", "slices", "msgs/node", "data", "pss", "discovery", "ok", "fail")
	for _, r := range res.Rows {
		fmt.Printf("%8d %8d %14.1f %12.1f %10.1f %12.1f %6d %6d\n",
			r.N, r.Slices, r.MsgsPerNode, r.DataMsgs, r.PSSMsgs, r.DiscoveryMsgs, r.OK, r.Failed)
	}
}

func runSlicing(seed uint64, quick bool) {
	done := header("E3: slicing convergence and accuracy")
	defer done()
	n, rounds := 1000, 60
	if quick {
		n, rounds = 300, 40
	}
	for _, churnRate := range []float64{0, 0.01} {
		for _, slicer := range []core.SlicerKind{core.SlicerRank, core.SlicerSwap} {
			points := lab.SlicingConvergence(n, 10, rounds, churnRate, slicer, seed)
			last := points[len(points)-1]
			fmt.Printf("slicer=%-6s churn=%.2f/round: accuracy r10=%.2f r%d=%.2f undecided=%d\n",
				slicerName(slicer), churnRate, points[9].Accuracy, rounds, last.Accuracy, last.Undecided)
		}
	}
}

func slicerName(k core.SlicerKind) string {
	switch k {
	case core.SlicerRank:
		return "rank"
	case core.SlicerSwap:
		return "swap"
	case core.SlicerStatic:
		return "static"
	default:
		return "?"
	}
}

func runCorrelated(seed uint64, quick bool) {
	done := header("E4: correlated slice failure — adaptive vs coin-toss slicing (§IV-A)")
	defer done()
	n := 500
	if quick {
		n = 200
	}
	for _, slicer := range []core.SlicerKind{core.SlicerRank, core.SlicerStatic} {
		res := lab.CorrelatedFailure(n, 10, 0.8, slicer, 8, seed)
		fmt.Printf("slicer=%-6s slice %d: members %d → killed %d → recovery over 40 rounds: %v\n",
			slicerName(res.Slicer), res.TargetSlice, res.BeforeMembers, res.Killed, res.AfterMembers)
	}
}

func runChurn(seed uint64, quick bool) {
	done := header("E5: read availability under churn")
	defer done()
	n, ops := 500, 100
	if quick {
		n, ops = 200, 50
	}
	rates := []float64{0, 0.005, 0.01, 0.02, 0.05}
	points := lab.AvailabilityUnderChurn(n, 10, rates, ops, seed)
	fmt.Printf("%14s %8s %8s %14s %8s\n", "churn/round", "ok", "failed", "availability", "retries")
	for _, p := range points {
		fmt.Printf("%14.3f %8d %8d %13.1f%% %8d\n",
			p.ChurnPerRound, p.OK, p.Failed, p.Availability*100, p.Retries)
	}
}

func runRepair(seed uint64, quick bool) {
	done := header("E6: replication repair via anti-entropy (§VII future work)")
	defer done()
	n := 400
	if quick {
		n = 200
	}
	res := lab.ReplicationRepair(n, 10, 5, seed)
	fmt.Printf("object %q: %d replicas → kill half → %d; recovery:\n",
		res.Key, res.InitialCount, res.AfterKillCount)
	for _, p := range res.Timeline {
		fmt.Printf("  +%2d rounds: %d replicas\n", p.Round, p.Replicas)
	}
}

func runLB(seed uint64, quick bool) {
	done := header("E7: load-balancer ablation — random vs slice cache (§VII)")
	defer done()
	n, ops := 500, 200
	if quick {
		n, ops = 200, 80
	}
	for _, r := range lab.LoadBalancerAblation(n, 10, ops, seed) {
		fmt.Printf("caching=%-5v msgs/node=%8.1f data-sends/node=%8.1f msgs/op=%8.1f ok=%d fail=%d\n",
			r.Caching, r.MsgsPerNode, r.DataPerNode, r.MsgsPerOp, r.OK, r.Failed)
	}
}

func runDHT(seed uint64, quick bool) {
	done := header("E8: DataFlasks vs structured DHT baseline under churn (§I)")
	defer done()
	n, ops := 300, 100
	if quick {
		n, ops = 150, 50
	}
	rates := []float64{0, 0.01, 0.02, 0.05}
	rows := lab.CompareWithDHT(n, 10, ops, rates, seed)
	fmt.Printf("%14s %16s %16s %14s %14s\n",
		"churn/round", "flasks avail", "dht avail", "flasks msgs", "dht msgs")
	for _, r := range rows {
		fmt.Printf("%14.3f %15.1f%% %15.1f%% %14.1f %14.1f\n",
			r.ChurnPerRound, r.FlasksAvail*100, r.DHTAvail*100, r.FlasksMsgs, r.DHTMsgs)
	}
}

func runPSS(seed uint64, quick bool) {
	done := header("E9: peer-sampling overlay quality")
	defer done()
	n := 1000
	if quick {
		n = 300
	}
	for _, kind := range []core.PSSKind{core.PSSCyclon, core.PSSNewscast} {
		q := lab.MeasurePSSQuality(n, 50, kind, seed)
		name := "cyclon"
		if kind == core.PSSNewscast {
			name = "newscast"
		}
		fmt.Printf("%-8s in-degree: mean=%.1f p50=%d p95=%d p99=%d min=%d max=%d zero-in-degree=%d\n",
			name, q.InDegree.Mean, q.InDegree.P50, q.InDegree.P95, q.InDegree.P99,
			q.InDegree.Min, q.InDegree.Max, q.ZeroInDegree)
	}
}

func runFanout(seed uint64, quick bool) {
	done := header("E10: fanout sweep vs atomic-delivery probability (§II theory)")
	defer done()
	n, trials := 500, 30
	if quick {
		n, trials = 200, 15
	}
	points := lab.FanoutSweep(n, []float64{-2, -1, 0, 1, 2}, trials, seed)
	fmt.Printf("%6s %8s %12s %14s %14s\n", "c", "fanout", "mean cover", "measured p", "theory p")
	for _, p := range points {
		fmt.Printf("%6.1f %8d %11.1f%% %14.2f %14.2f\n",
			p.C, p.Fanout, p.MeanCover*100, p.MeasuredP, p.TheoryP)
	}
}

func runReconfig(seed uint64, quick bool) {
	done := header("E11: dynamic slice-count reconfiguration (§IV-C)")
	defer done()
	n := 400
	if quick {
		n = 200
	}
	res := lab.SliceReconfiguration(n, 10, 5, seed)
	fmt.Printf("object %q: k %d→%d, replicas before=%d\n",
		res.Key, res.OldSlices, res.NewSlices, res.BeforeReps)
	for _, p := range res.Timeline {
		fmt.Printf("  +%2d rounds: replicas=%d slice-accuracy=%.2f\n",
			p.Round, p.Replicas, p.SliceAccuracy)
	}
}

func runPutFlood(seed uint64, quick bool) {
	done := header("E12: bounded-put-flood ablation (§IV-B optimization on writes)")
	defer done()
	n := 400
	if quick {
		n = 200
	}
	for _, r := range lab.PutFloodAblation(n, 10, seed) {
		fmt.Printf("bounded=%-5v msgs/node=%8.1f data-sends/node=%8.1f reps: immediate=%d repaired=%d ok=%d fail=%d\n",
			r.Bounded, r.MsgsPerNode, r.DataPerNode, r.ImmediateReps, r.RepairedReps, r.OK, r.Failed)
	}
}

func runStore(quick bool) {
	done := header("E13: store engines — put/get throughput and recovery time")
	defer done()
	puts, fsyncPuts := 20000, 2000
	if quick {
		puts, fsyncPuts = 4000, 400
	}
	fmt.Printf("%12s %8s %12s %12s %12s %10s\n",
		"engine", "fsync", "puts", "put ops/s", "get ops/s", "recover")
	for _, row := range []struct {
		name  string
		fsync bool
		open  func(dir string, fsync bool) (store.Store, error)
	}{
		{"memory", false, func(string, bool) (store.Store, error) { return store.NewMemory(), nil }},
		{"disk", false, openDisk},
		{"disk", true, openDisk},
		{"log", false, openLog},
		{"log", true, openLog},
	} {
		n := puts
		if row.fsync {
			n = fsyncPuts // fsync-per-object engines are orders slower
		}
		res, err := measureStore(row.open, row.name, row.fsync, n)
		if err != nil {
			fmt.Printf("%12s %8v measurement failed: %v\n", row.name, row.fsync, err)
			continue
		}
		recover := "-"
		if res.recover > 0 {
			recover = res.recover.Round(time.Millisecond).String()
		}
		fmt.Printf("%12s %8v %12d %12.0f %12.0f %10s\n",
			row.name, row.fsync, n, res.putOps, res.getOps, recover)
	}
}

func openDisk(dir string, fsync bool) (store.Store, error) {
	return store.OpenDisk(dir, store.DiskOptions{Fsync: fsync})
}

func openLog(dir string, fsync bool) (store.Store, error) {
	return store.OpenLog(dir, store.LogOptions{Fsync: fsync})
}

type storeResult struct {
	putOps  float64
	getOps  float64
	recover time.Duration
}

// measureStore drives one engine: n puts from 8 concurrent writers
// (fsync engines coalesce via group commit), n random gets, then — for
// persistent engines — a reopen to time recovery.
func measureStore(open func(dir string, fsync bool) (store.Store, error), name string, fsync bool, n int) (storeResult, error) {
	dir, err := os.MkdirTemp("", "flaskbench-store-")
	if err != nil {
		return storeResult{}, err
	}
	defer os.RemoveAll(dir)
	s, err := open(dir, fsync)
	if err != nil {
		return storeResult{}, err
	}
	val := make([]byte, 1024)
	const writers = 8
	start := time.Now()
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += writers {
				if err := s.Put(fmt.Sprintf("key%08d", i), 1, val); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		s.Close()
		return storeResult{}, firstErr
	}
	res := storeResult{putOps: float64(n) / time.Since(start).Seconds()}

	rng := rand.New(rand.NewPCG(1, 9))
	start = time.Now()
	for i := 0; i < n; i++ {
		if _, _, ok, err := s.Get(fmt.Sprintf("key%08d", rng.IntN(n)), store.Latest); err != nil || !ok {
			s.Close()
			return storeResult{}, fmt.Errorf("get: ok=%v err=%v", ok, err)
		}
	}
	res.getOps = float64(n) / time.Since(start).Seconds()
	if err := s.Close(); err != nil {
		return storeResult{}, err
	}

	if name != "memory" {
		start = time.Now()
		s2, err := open(dir, fsync)
		if err != nil {
			return storeResult{}, err
		}
		res.recover = time.Since(start)
		if s2.Count() != n {
			s2.Close()
			return storeResult{}, fmt.Errorf("recovered %d of %d objects", s2.Count(), n)
		}
		s2.Close()
	}
	return res, nil
}
