// Command flaskbench regenerates every figure of the paper's
// evaluation (§VI) plus this reproduction's extension experiments, on
// the deterministic discrete-event simulator.
//
//	flaskbench -exp fig3            # paper Figure 3
//	flaskbench -exp fig4            # paper Figure 4
//	flaskbench -exp all             # everything
//	flaskbench -exp fig3 -quick     # reduced sweep for smoke runs
//
// Experiments: fig3 fig4 slicing correlated churn repair lb dht pss
// fanout reconfig putflood store compact pipeline resp bootstrap
// shards.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dataflasks/internal/core"
	"dataflasks/internal/lab"
	"dataflasks/internal/store"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig3, fig4, slicing, correlated, churn, repair, lb, dht, pss, fanout, reconfig, putflood, store, compact, pipeline, resp, bootstrap, shards, all)")
		seed     = flag.Uint64("seed", 42, "simulation seed")
		quick    = flag.Bool("quick", false, "reduced scales for smoke runs")
		ns       = flag.String("ns", "", "override node sweep, e.g. 500,1000,2000")
		jsonPath = flag.String("json", "", "write machine-readable results to this file (currently: the churn and bootstrap experiments)")
	)
	flag.Parse()

	sweep := lab.DefaultNs
	if *quick {
		sweep = []int{200, 400, 600}
	}
	if *ns != "" {
		sweep = parseNs(*ns)
	}

	runners := map[string]func(){
		"fig3":       func() { runFig3(sweep, *seed, *quick) },
		"fig4":       func() { runFig4(sweep, *seed, *quick) },
		"slicing":    func() { runSlicing(*seed, *quick) },
		"correlated": func() { runCorrelated(*seed, *quick) },
		"churn":      func() { runChurn(*seed, *quick, *jsonPath) },
		"repair":     func() { runRepair(*seed, *quick) },
		"lb":         func() { runLB(*seed, *quick) },
		"dht":        func() { runDHT(*seed, *quick) },
		"pss":        func() { runPSS(*seed, *quick) },
		"fanout":     func() { runFanout(*seed, *quick) },
		"reconfig":   func() { runReconfig(*seed, *quick) },
		"putflood":   func() { runPutFlood(*seed, *quick) },
		"store":      func() { runStore(*quick) },
		"compact":    func() { runCompact(*quick) },
		"pipeline":   func() { runPipeline(*seed, *quick) },
		"resp":       func() { runRESP(*seed, *quick) },
		"bootstrap":  func() { runBootstrap(*seed, *quick, *jsonPath) },
		"shards":     func() { runShards(*seed, *quick, *jsonPath) },
	}
	order := []string{"fig3", "fig4", "slicing", "correlated", "churn", "repair", "lb", "dht", "pss", "fanout", "reconfig", "putflood", "store", "compact", "pipeline", "resp", "bootstrap", "shards"}

	if *exp == "all" {
		for _, name := range order {
			runners[name]()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "flaskbench: unknown experiment %q (want one of %s, all)\n",
			*exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	run()
}

func parseNs(s string) []int {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "flaskbench: bad -ns element %q\n", p)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func header(title string) func() {
	fmt.Printf("\n=== %s ===\n", title)
	start := time.Now()
	return func() { fmt.Printf("--- done in %s\n", time.Since(start).Round(time.Millisecond)) }
}

func runFig3(ns []int, seed uint64, quick bool) {
	done := header("Figure 3: avg messages per node, constant 10 slices (paper §VI)")
	defer done()
	slices := 10
	if quick {
		slices = 5
	}
	res := lab.Figure3(lab.FigureOptions{Ns: ns, Slices: slices, Seed: seed})
	printFigure(res)
}

func runFig4(ns []int, seed uint64, quick bool) {
	done := header("Figure 4: avg messages per node, slices ∝ nodes (paper §VI)")
	defer done()
	rf := 50
	if quick {
		rf = 40
	}
	res := lab.Figure4(lab.FigureOptions{Ns: ns, ReplicationFactor: rf, Seed: seed})
	printFigure(res)
}

func printFigure(res lab.FigureResult) {
	fmt.Printf("%8s %8s %14s %12s %10s %12s %6s %6s\n",
		"N", "slices", "msgs/node", "data", "pss", "discovery", "ok", "fail")
	for _, r := range res.Rows {
		fmt.Printf("%8d %8d %14.1f %12.1f %10.1f %12.1f %6d %6d\n",
			r.N, r.Slices, r.MsgsPerNode, r.DataMsgs, r.PSSMsgs, r.DiscoveryMsgs, r.OK, r.Failed)
	}
}

func runSlicing(seed uint64, quick bool) {
	done := header("E3: slicing convergence and accuracy")
	defer done()
	n, rounds := 1000, 60
	if quick {
		n, rounds = 300, 40
	}
	for _, churnRate := range []float64{0, 0.01} {
		for _, slicer := range []core.SlicerKind{core.SlicerRank, core.SlicerSwap} {
			points := lab.SlicingConvergence(n, 10, rounds, churnRate, slicer, seed)
			last := points[len(points)-1]
			fmt.Printf("slicer=%-6s churn=%.2f/round: accuracy r10=%.2f r%d=%.2f undecided=%d\n",
				slicerName(slicer), churnRate, points[9].Accuracy, rounds, last.Accuracy, last.Undecided)
		}
	}
}

func slicerName(k core.SlicerKind) string {
	switch k {
	case core.SlicerRank:
		return "rank"
	case core.SlicerSwap:
		return "swap"
	case core.SlicerStatic:
		return "static"
	default:
		return "?"
	}
}

func runCorrelated(seed uint64, quick bool) {
	done := header("E4: correlated slice failure — adaptive vs coin-toss slicing (§IV-A)")
	defer done()
	n := 500
	if quick {
		n = 200
	}
	for _, slicer := range []core.SlicerKind{core.SlicerRank, core.SlicerStatic} {
		res := lab.CorrelatedFailure(n, 10, 0.8, slicer, 8, seed)
		fmt.Printf("slicer=%-6s slice %d: members %d → killed %d → recovery over 40 rounds: %v\n",
			slicerName(res.Slicer), res.TargetSlice, res.BeforeMembers, res.Killed, res.AfterMembers)
	}
}

func runChurn(seed uint64, quick bool, jsonPath string) {
	done := header("E5: read availability under churn")
	n, ops := 500, 100
	if quick {
		n, ops = 200, 50
	}
	rates := []float64{0, 0.005, 0.01, 0.02, 0.05}
	points := lab.AvailabilityUnderChurn(n, 10, rates, ops, seed)
	fmt.Printf("%14s %8s %8s %14s %8s\n", "churn/round", "ok", "failed", "availability", "retries")
	for _, p := range points {
		fmt.Printf("%14.3f %8d %8d %13.1f%% %8d\n",
			p.ChurnPerRound, p.OK, p.Failed, p.Availability*100, p.Retries)
	}
	done()
	runChurnConvergence(seed, quick, jsonPath)
}

// runChurnConvergence is E17: after a churn burst, how fast does
// anti-entropy restore full replication, and what does the repair
// digest cost — Bloom summaries vs the full-header baseline. The CI
// smoke step runs it with hard gates: both modes must converge, and
// the Bloom mode must spend >= 5x less digest bandwidth.
func runChurnConvergence(seed uint64, quick bool, jsonPath string) {
	done := header("E17: churn convergence — Bloom-digest repair vs full-header baseline")
	defer done()
	opts := lab.ChurnConvergenceOptions{
		N: 400, Slices: 10, Records: 300, KillFrac: 0.3, Rounds: 140, Seed: seed,
	}
	if quick {
		opts = lab.ChurnConvergenceOptions{
			N: 150, Slices: 5, Records: 120, KillFrac: 0.3, Rounds: 110, Seed: seed,
		}
	}
	full, bloom := lab.ChurnConvergenceCompare(opts, 12)

	fmt.Printf("%12s %10s %10s %12s %12s %14s %14s\n",
		"mode", "converged", "round", "digest KiB", "push KiB", "digest B/n/r", "repair B/obj")
	for _, r := range []lab.ChurnConvergenceResult{full, bloom} {
		fmt.Printf("%12s %10v %10d %12.1f %12.1f %14.1f %14.1f\n",
			r.Mode, r.Converged, r.ConvergedRound,
			float64(r.DigestBytes)/1024, float64(r.PushBytes)/1024,
			r.DigestBytesPerNodeRound, r.RepairBytesPerObject)
	}
	ratio := 0.0
	if bloom.DigestBytes > 0 {
		ratio = float64(full.DigestBytes) / float64(bloom.DigestBytes)
	}
	fmt.Printf("digest bandwidth: bloom is %.1fx cheaper than full headers\n", ratio)

	if jsonPath != "" {
		out := struct {
			Experiment       string                     `json:"experiment"`
			Seed             uint64                     `json:"seed"`
			Quick            bool                       `json:"quick"`
			FullHeader       lab.ChurnConvergenceResult `json:"full_header"`
			Bloom            lab.ChurnConvergenceResult `json:"bloom"`
			DigestBytesRatio float64                    `json:"digest_bytes_ratio"`
		}{"churn-convergence", seed, quick, full, bloom, ratio}
		data, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "flaskbench: write %s: %v\n", jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}

	// Regression gates (the CI smoke step relies on the exit code).
	if !full.Converged || !bloom.Converged {
		fmt.Fprintln(os.Stderr, "flaskbench: churn experiment regressed (a mode failed to restore full replication)")
		os.Exit(1)
	}
	if ratio < 5 {
		fmt.Fprintf(os.Stderr, "flaskbench: churn experiment regressed (bloom digest saving %.1fx < 5x)\n", ratio)
		os.Exit(1)
	}
}

// runBootstrap is E18: cold-joiner recovery — segment-streaming
// bootstrap vs the object-wise anti-entropy baseline, plus the
// mixed-version cluster where no peer speaks the protocol. The CI
// smoke step runs it with hard gates: every mode must converge, the
// mixed cluster must fall back cleanly (with the fallback visible in
// bootstrap_fallback_objects), and segment bootstrap must recover the
// slice >= 5x faster than object repair.
func runBootstrap(seed uint64, quick bool, jsonPath string) {
	done := header("E18: cold-join bootstrap — segment streaming vs object-wise repair")
	defer done()
	opts := lab.BootstrapRecoveryOptions{
		N: 100, Slices: 5, Records: 10000, Rounds: 300, Seed: seed,
	}
	if quick {
		opts = lab.BootstrapRecoveryOptions{
			N: 50, Slices: 5, Records: 5000, Rounds: 200, Seed: seed,
		}
	}
	segment, object := lab.BootstrapRecoveryCompare(opts)
	opts.Segment, opts.DisablePeerBootstrap = true, true
	fallback := lab.BootstrapRecovery(opts)

	fmt.Printf("%18s %8s %10s %10s %12s %10s %10s\n",
		"mode", "rounds", "sliceobjs", "segments", "KiB", "rejected", "fellback")
	for _, r := range []lab.BootstrapRecoveryResult{segment, object, fallback} {
		fmt.Printf("%18s %8d %10d %10d %12.1f %10d %10v\n",
			r.Mode, r.JoinRounds, r.SliceObjects, r.BootstrapSegments,
			float64(r.BootstrapBytes)/1024, r.ChunksRejected, r.FellBack)
	}
	ratio := 0.0
	if segment.JoinRounds > 0 {
		ratio = float64(object.JoinRounds) / float64(segment.JoinRounds)
	}
	fmt.Printf("cold join: segment bootstrap is %.1fx faster than object-wise repair\n", ratio)

	if jsonPath != "" {
		out := struct {
			Experiment string                      `json:"experiment"`
			Seed       uint64                      `json:"seed"`
			Quick      bool                        `json:"quick"`
			Segment    lab.BootstrapRecoveryResult `json:"segment"`
			Object     lab.BootstrapRecoveryResult `json:"object"`
			Fallback   lab.BootstrapRecoveryResult `json:"fallback"`
			RoundRatio float64                     `json:"round_ratio"`
		}{"bootstrap-recovery", seed, quick, segment, object, fallback, ratio}
		data, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "flaskbench: write %s: %v\n", jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}

	// Regression gates (the CI smoke step relies on the exit code).
	if segment.JoinRounds < 0 || object.JoinRounds < 0 || fallback.JoinRounds < 0 {
		fmt.Fprintln(os.Stderr, "flaskbench: bootstrap experiment regressed (a mode never recovered the slice)")
		os.Exit(1)
	}
	if segment.FellBack {
		fmt.Fprintln(os.Stderr, "flaskbench: bootstrap experiment regressed (segment joiner fell back to object repair)")
		os.Exit(1)
	}
	if !fallback.FellBack || fallback.FallbackObjects == 0 {
		fmt.Fprintln(os.Stderr, "flaskbench: bootstrap experiment regressed (mixed-version cluster did not fall back cleanly)")
		os.Exit(1)
	}
	if ratio < 5 {
		fmt.Fprintf(os.Stderr, "flaskbench: bootstrap experiment regressed (segment speedup %.1fx < 5x)\n", ratio)
		os.Exit(1)
	}
}

// runShards is E19: the sharded data-plane runtime. Two halves, both
// gated. Scaling: one node's put/get throughput at 1 vs 8 shards — on
// a multi-core host (>= 4 cores) 8 shards must clear 2x the
// single-shard rate, and the CI smoke step relies on the exit code; on
// smaller hosts the ratio is report-only (goroutines cannot outrun one
// core). Equivalence: a 1-shard and an 8-shard cluster fed the same
// seeded workload must converge to identical per-node stores — that
// gate holds everywhere.
func runShards(seed uint64, quick bool, jsonPath string) {
	done := header("E19: data-plane sharding — throughput scaling and state equivalence")
	defer done()
	cores := runtime.GOMAXPROCS(0)
	gateScaling := cores >= 4

	scaleOpts := lab.ShardScalingOptions{
		Shards: []int{1, 8}, Keys: 4096, Producers: 4,
		Duration: 2 * time.Second, Seed: seed,
	}
	eqOpts := lab.ShardEquivalenceOptions{
		N: 16, Slices: 4, Keys: 90, Shards: 8, Seed: seed,
	}
	if quick {
		scaleOpts.Duration = 500 * time.Millisecond
		eqOpts = lab.ShardEquivalenceOptions{
			N: 10, Slices: 3, Keys: 36, Shards: 8, Seed: seed,
		}
	}

	results := lab.ShardScaling(scaleOpts)
	fmt.Printf("%8s %12s %10s %14s\n", "shards", "ops", "dropped", "ops/sec")
	for _, r := range results {
		fmt.Printf("%8d %12d %10d %14.0f\n", r.Shards, r.Ops, r.Dropped, r.OpsPerSec)
	}
	ratio := 0.0
	if len(results) == 2 && results[0].OpsPerSec > 0 {
		ratio = results[1].OpsPerSec / results[0].OpsPerSec
	}
	fmt.Printf("scaling: %d shards serve %.2fx the single-shard rate (%d cores, gate %s)\n",
		results[len(results)-1].Shards, ratio, cores, map[bool]string{true: "enforced", false: "report-only"}[gateScaling])

	eq, err := lab.ShardEquivalence(eqOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flaskbench: shards equivalence: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("equivalence: equal=%v nodes=%d objects=%d waited=%s\n",
		eq.Equal, eq.Nodes, eq.Objects, eq.Waited.Round(time.Millisecond))

	if jsonPath != "" {
		out := struct {
			Experiment   string                     `json:"experiment"`
			Seed         uint64                     `json:"seed"`
			Quick        bool                       `json:"quick"`
			Cores        int                        `json:"cores"`
			GateEnforced bool                       `json:"gate_enforced"`
			Scaling      []lab.ShardScalingResult   `json:"scaling"`
			Ratio        float64                    `json:"ratio"`
			Equivalence  lab.ShardEquivalenceResult `json:"equivalence"`
		}{"shards", seed, quick, cores, gateScaling, results, ratio, eq}
		data, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "flaskbench: write %s: %v\n", jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}

	// Regression gates (the CI smoke step relies on the exit code).
	if !eq.Equal {
		fmt.Fprintf(os.Stderr, "flaskbench: shards experiment regressed (sharded cluster diverged at node %s)\n", eq.Mismatch)
		os.Exit(1)
	}
	if eq.Objects == 0 {
		fmt.Fprintln(os.Stderr, "flaskbench: shards experiment regressed (equivalence converged on empty stores)")
		os.Exit(1)
	}
	if gateScaling && ratio < 2 {
		fmt.Fprintf(os.Stderr, "flaskbench: shards experiment regressed (8-shard speedup %.2fx < 2x on %d cores)\n", ratio, cores)
		os.Exit(1)
	}
}

func runRepair(seed uint64, quick bool) {
	done := header("E6: replication repair via anti-entropy (§VII future work)")
	defer done()
	n := 400
	if quick {
		n = 200
	}
	res := lab.ReplicationRepair(n, 10, 5, seed)
	fmt.Printf("object %q: %d replicas → kill half → %d; recovery:\n",
		res.Key, res.InitialCount, res.AfterKillCount)
	for _, p := range res.Timeline {
		fmt.Printf("  +%2d rounds: %d replicas\n", p.Round, p.Replicas)
	}
}

func runLB(seed uint64, quick bool) {
	done := header("E7: load-balancer ablation — random vs slice cache (§VII)")
	defer done()
	n, ops := 500, 200
	if quick {
		n, ops = 200, 80
	}
	for _, r := range lab.LoadBalancerAblation(n, 10, ops, seed) {
		fmt.Printf("caching=%-5v msgs/node=%8.1f data-sends/node=%8.1f msgs/op=%8.1f ok=%d fail=%d\n",
			r.Caching, r.MsgsPerNode, r.DataPerNode, r.MsgsPerOp, r.OK, r.Failed)
	}
}

func runDHT(seed uint64, quick bool) {
	done := header("E8: DataFlasks vs structured DHT baseline under churn (§I)")
	defer done()
	n, ops := 300, 100
	if quick {
		n, ops = 150, 50
	}
	rates := []float64{0, 0.01, 0.02, 0.05}
	rows := lab.CompareWithDHT(n, 10, ops, rates, seed)
	fmt.Printf("%14s %16s %16s %14s %14s\n",
		"churn/round", "flasks avail", "dht avail", "flasks msgs", "dht msgs")
	for _, r := range rows {
		fmt.Printf("%14.3f %15.1f%% %15.1f%% %14.1f %14.1f\n",
			r.ChurnPerRound, r.FlasksAvail*100, r.DHTAvail*100, r.FlasksMsgs, r.DHTMsgs)
	}
}

func runPSS(seed uint64, quick bool) {
	done := header("E9: peer-sampling overlay quality")
	defer done()
	n := 1000
	if quick {
		n = 300
	}
	for _, kind := range []core.PSSKind{core.PSSCyclon, core.PSSNewscast} {
		q := lab.MeasurePSSQuality(n, 50, kind, seed)
		name := "cyclon"
		if kind == core.PSSNewscast {
			name = "newscast"
		}
		fmt.Printf("%-8s in-degree: mean=%.1f p50=%d p95=%d p99=%d min=%d max=%d zero-in-degree=%d\n",
			name, q.InDegree.Mean, q.InDegree.P50, q.InDegree.P95, q.InDegree.P99,
			q.InDegree.Min, q.InDegree.Max, q.ZeroInDegree)
	}
}

func runFanout(seed uint64, quick bool) {
	done := header("E10: fanout sweep vs atomic-delivery probability (§II theory)")
	defer done()
	n, trials := 500, 30
	if quick {
		n, trials = 200, 15
	}
	points := lab.FanoutSweep(n, []float64{-2, -1, 0, 1, 2}, trials, seed)
	fmt.Printf("%6s %8s %12s %14s %14s\n", "c", "fanout", "mean cover", "measured p", "theory p")
	for _, p := range points {
		fmt.Printf("%6.1f %8d %11.1f%% %14.2f %14.2f\n",
			p.C, p.Fanout, p.MeanCover*100, p.MeasuredP, p.TheoryP)
	}
}

func runReconfig(seed uint64, quick bool) {
	done := header("E11: dynamic slice-count reconfiguration (§IV-C)")
	defer done()
	n := 400
	if quick {
		n = 200
	}
	res := lab.SliceReconfiguration(n, 10, 5, seed)
	fmt.Printf("object %q: k %d→%d, replicas before=%d\n",
		res.Key, res.OldSlices, res.NewSlices, res.BeforeReps)
	for _, p := range res.Timeline {
		fmt.Printf("  +%2d rounds: replicas=%d slice-accuracy=%.2f\n",
			p.Round, p.Replicas, p.SliceAccuracy)
	}
}

func runPutFlood(seed uint64, quick bool) {
	done := header("E12: bounded-put-flood ablation (§IV-B optimization on writes)")
	defer done()
	n := 400
	if quick {
		n = 200
	}
	for _, r := range lab.PutFloodAblation(n, 10, seed) {
		fmt.Printf("bounded=%-5v msgs/node=%8.1f data-sends/node=%8.1f reps: immediate=%d repaired=%d ok=%d fail=%d\n",
			r.Bounded, r.MsgsPerNode, r.DataPerNode, r.ImmediateReps, r.RepairedReps, r.OK, r.Failed)
	}
}

func runStore(quick bool) {
	done := header("E13: store engines — put/get throughput and recovery time")
	defer done()
	puts, fsyncPuts := 20000, 2000
	if quick {
		puts, fsyncPuts = 4000, 400
	}
	fmt.Printf("%12s %8s %12s %12s %12s %10s\n",
		"engine", "fsync", "puts", "put ops/s", "get ops/s", "recover")
	for _, row := range []struct {
		name  string
		fsync bool
		open  func(dir string, fsync bool) (store.Store, error)
	}{
		{"memory", false, func(string, bool) (store.Store, error) { return store.NewMemory(), nil }},
		{"disk", false, openDisk},
		{"disk", true, openDisk},
		{"log", false, openLog},
		{"log", true, openLog},
	} {
		n := puts
		if row.fsync {
			n = fsyncPuts // fsync-per-object engines are orders slower
		}
		res, err := measureStore(row.open, row.name, row.fsync, n)
		if err != nil {
			fmt.Printf("%12s %8v measurement failed: %v\n", row.name, row.fsync, err)
			continue
		}
		recover := "-"
		if res.recover > 0 {
			recover = res.recover.Round(time.Millisecond).String()
		}
		fmt.Printf("%12s %8v %12d %12.0f %12.0f %10s\n",
			row.name, row.fsync, n, res.putOps, res.getOps, recover)
	}
}

// runCompact measures the two claims of the non-blocking compaction
// work: (a) foreground Get/Put latency stays bounded while a
// rate-limited compaction pass churns in the background, and (b) the
// batched write path amortizes group commit — PutBatch of 64 objects
// versus 64 sequential fsync'd Puts.
func runCompact(quick bool) {
	done := header("E14: log engine — foreground latency under compaction, batched write path")
	defer done()
	n, window := 20000, 1500*time.Millisecond
	if quick {
		n, window = 4000, 700*time.Millisecond
	}
	const valSize = 1024

	// Errors here are regressions (a Get failing or corrupting during
	// an active pass), not reporting noise: fail hard so the CI smoke
	// step catches them.
	baseGet, basePut, err := compactLatency(n, window, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flaskbench: compact baseline: %v\n", err)
		os.Exit(1)
	}
	churnGet, churnPut, err := compactLatency(n, window, true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flaskbench: compact under load: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%24s %14s %14s\n", "", "get p99", "put p99")
	fmt.Printf("%24s %14s %14s\n", "no compaction", baseGet, basePut)
	fmt.Printf("%24s %14s %14s\n", "compaction active", churnGet, churnPut)
	fmt.Printf("%24s %13.2fx %13.2fx\n", "ratio", ratio(churnGet, baseGet), ratio(churnPut, basePut))

	seq, batch, err := putBatchHeadToHead(64, valSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flaskbench: putbatch: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("64 fsync'd Puts: %s; PutBatch(64): %s — %.1fx\n",
		seq.Round(time.Microsecond), batch.Round(time.Microsecond), ratio(seq, batch))
}

// runPipeline measures the async/batched client API: the same put
// workload as one blocking op at a time, as pipelined futures, and as
// per-slice batches on the PutBatch wire path. Virtual time makes the
// speedups deterministic; the pipelined and batch modes are expected
// to beat blocking by >= 5x at the same ack level, so the CI smoke
// step fails hard when they do not.
func runPipeline(seed uint64, quick bool) {
	done := header("E15: client API — blocking vs pipelined futures vs batched puts")
	defer done()
	n, ops := 400, 200
	if quick {
		n, ops = 150, 100
	}
	rows := lab.PipelineComparison(n, 10, ops, 1, seed)
	var blocking time.Duration
	for _, r := range rows {
		if r.Mode == "blocking" {
			blocking = r.Elapsed
		}
	}
	fmt.Printf("%10s %6s %6s %6s %14s %14s %14s %9s\n",
		"mode", "ops", "ok", "fail", "virtual time", "ops/s (virt)", "data msgs/op", "speedup")
	failed := false
	for _, r := range rows {
		speedup := 0.0
		if r.Elapsed > 0 {
			speedup = float64(blocking) / float64(r.Elapsed)
		}
		fmt.Printf("%10s %6d %6d %6d %14s %14.0f %14.1f %8.1fx\n",
			r.Mode, r.Ops, r.OK, r.Failed, r.Elapsed.Round(time.Microsecond),
			r.OpsPerSec, r.DataMsgsPerOp, speedup)
		if r.Failed > 0 {
			failed = true
		}
		if r.Mode != "blocking" && speedup < 5 {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "flaskbench: pipeline experiment regressed (failures or speedup < 5x)")
		os.Exit(1)
	}
}

// runRESP measures the RESP gateway (E16): the same SET workload over
// raw RESP TCP — one command per round trip vs the whole batch
// pipelined down one connection — plus the native future-based client
// as the no-framing reference. The cluster's in-process fabric runs
// the LAN latency model, so the blocking baseline pays a real network
// round trip per command; pipelined RESP is expected to beat it by
// >= 5x (it overlaps every op through the gateway's completion queue),
// and the CI smoke step fails hard when it does not.
func runRESP(seed uint64, quick bool) {
	done := header("E16: RESP gateway — blocking vs pipelined RESP vs native futures (LAN model)")
	defer done()
	n, slices, ops, period := 40, 4, 400, 30*time.Millisecond
	if quick {
		n, slices, ops, period = 24, 3, 200, 25*time.Millisecond
	}
	rows, err := lab.RESPComparison(n, slices, ops, period, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flaskbench: resp experiment: %v\n", err)
		os.Exit(1)
	}
	var blocking time.Duration
	for _, r := range rows {
		if r.Mode == "resp-blocking" {
			blocking = r.Elapsed
		}
	}
	fmt.Printf("%18s %6s %6s %6s %14s %12s %9s\n",
		"mode", "ops", "ok", "fail", "elapsed", "ops/s", "speedup")
	failed := false
	for _, r := range rows {
		speedup := 0.0
		if r.Elapsed > 0 {
			speedup = float64(blocking) / float64(r.Elapsed)
		}
		fmt.Printf("%18s %6d %6d %6d %14s %12.0f %8.1fx\n",
			r.Mode, r.Ops, r.OK, r.Failed, r.Elapsed.Round(time.Millisecond),
			r.OpsPerSec, speedup)
		// Epidemic routing is probabilistic; a stray failure is not a
		// regression, a failure rate is.
		if r.Failed > r.Ops/20 {
			failed = true
		}
		if r.Mode == "resp-pipelined" && speedup < 5 {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "flaskbench: resp experiment regressed (failure rate > 5% or pipelined speedup < 5x)")
		os.Exit(1)
	}
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// compactLatency fills a log store with compaction debt (small
// segments, most objects deleted) and measures foreground Get/Put p99
// over a fixed wall-clock window. With compactDuring, deletes run
// under an aggressive live-ratio threshold and a copy-rate cap sized
// so the background pass cycles copy bursts and throttle sleeps for
// the whole window (pass duration ≈ 4× the window); without it,
// compaction is disabled and the same debt just sits there.
func compactLatency(n int, window time.Duration, compactDuring bool) (getP99, putP99 time.Duration, err error) {
	dir, err := os.MkdirTemp("", "flaskbench-compact-")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	val := make([]byte, 1024)
	opts := store.LogOptions{SegmentMaxBytes: 1 << 20, CompactLiveRatio: -1}
	if compactDuring {
		// The pass's charged work is roughly the whole data set (reads)
		// plus the ~10% live copies; spread it over ~4 windows.
		opts.CompactLiveRatio = 0.95
		work := int64(n) * int64(len(val)) * 11 / 10
		opts.CompactRateBytesPerSec = work / int64(4*window/time.Second+1)
	}
	l, err := store.OpenLog(dir, opts)
	if err != nil {
		return 0, 0, err
	}
	defer l.Close()

	key := func(i int) string { return fmt.Sprintf("key%08d", i) }
	for i := 0; i < n; i += 256 {
		batch := make([]store.Object, 0, 256)
		for j := i; j < i+256 && j < n; j++ {
			batch = append(batch, store.Object{Key: key(j), Version: 1, Value: val})
		}
		if err := l.PutBatch(batch); err != nil {
			return 0, 0, err
		}
	}
	// Kill 90%: sealed segments collapse below any live-ratio
	// threshold. With compaction enabled the deletes kick the
	// background pass, which starts copying (rate-limited) right away.
	for i := 0; i < n*9/10; i++ {
		if _, err := l.Delete(key(i), 1); err != nil {
			return 0, 0, err
		}
	}

	survivors := n - n*9/10
	rng := rand.New(rand.NewPCG(7, 13))
	var getLat, putLat []time.Duration
	deadline := time.Now().Add(window)
	for i := 0; time.Now().Before(deadline); i++ {
		k := key(n*9/10 + rng.IntN(survivors))
		start := time.Now()
		if _, _, ok, err := l.Get(k, store.Latest); err != nil || !ok {
			return 0, 0, fmt.Errorf("get %s: ok=%v err=%v", k, ok, err)
		}
		getLat = append(getLat, time.Since(start))
		if i%4 == 0 {
			start = time.Now()
			if err := l.Put(fmt.Sprintf("new%08d", i), 1, val); err != nil {
				return 0, 0, err
			}
			putLat = append(putLat, time.Since(start))
		}
	}
	return p99(getLat), p99(putLat), nil
}

func p99(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)*99/100]
}

// putBatchHeadToHead times n sequential fsync'd Puts against one
// PutBatch of n objects on a fresh fsync'd log store.
func putBatchHeadToHead(n, valSize int) (seq, batch time.Duration, err error) {
	dir, err := os.MkdirTemp("", "flaskbench-batch-")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	l, err := store.OpenLog(dir, store.LogOptions{Fsync: true})
	if err != nil {
		return 0, 0, err
	}
	defer l.Close()
	val := make([]byte, valSize)

	start := time.Now()
	for i := 0; i < n; i++ {
		if err := l.Put(fmt.Sprintf("seq%08d", i), 1, val); err != nil {
			return 0, 0, err
		}
	}
	seq = time.Since(start)

	objs := make([]store.Object, n)
	for i := range objs {
		objs[i] = store.Object{Key: fmt.Sprintf("batch%08d", i), Version: 1, Value: val}
	}
	start = time.Now()
	if err := l.PutBatch(objs); err != nil {
		return 0, 0, err
	}
	batch = time.Since(start)
	return seq, batch, nil
}

func openDisk(dir string, fsync bool) (store.Store, error) {
	return store.OpenDisk(dir, store.DiskOptions{Fsync: fsync})
}

func openLog(dir string, fsync bool) (store.Store, error) {
	return store.OpenLog(dir, store.LogOptions{Fsync: fsync})
}

type storeResult struct {
	putOps  float64
	getOps  float64
	recover time.Duration
}

// measureStore drives one engine: n puts from 8 concurrent writers
// (fsync engines coalesce via group commit), n random gets, then — for
// persistent engines — a reopen to time recovery.
func measureStore(open func(dir string, fsync bool) (store.Store, error), name string, fsync bool, n int) (storeResult, error) {
	dir, err := os.MkdirTemp("", "flaskbench-store-")
	if err != nil {
		return storeResult{}, err
	}
	defer os.RemoveAll(dir)
	s, err := open(dir, fsync)
	if err != nil {
		return storeResult{}, err
	}
	val := make([]byte, 1024)
	const writers = 8
	start := time.Now()
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += writers {
				if err := s.Put(fmt.Sprintf("key%08d", i), 1, val); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		s.Close()
		return storeResult{}, firstErr
	}
	res := storeResult{putOps: float64(n) / time.Since(start).Seconds()}

	rng := rand.New(rand.NewPCG(1, 9))
	start = time.Now()
	for i := 0; i < n; i++ {
		if _, _, ok, err := s.Get(fmt.Sprintf("key%08d", rng.IntN(n)), store.Latest); err != nil || !ok {
			s.Close()
			return storeResult{}, fmt.Errorf("get: ok=%v err=%v", ok, err)
		}
	}
	res.getOps = float64(n) / time.Since(start).Seconds()
	if err := s.Close(); err != nil {
		return storeResult{}, err
	}

	if name != "memory" {
		start = time.Now()
		s2, err := open(dir, fsync)
		if err != nil {
			return storeResult{}, err
		}
		res.recover = time.Since(start)
		if s2.Count() != n {
			s2.Close()
			return storeResult{}, fmt.Errorf("recovered %d of %d objects", s2.Count(), n)
		}
		s2.Close()
	}
	return res, nil
}
