// Command flaskscheck runs the repo's invariant analyzers — the rules
// the compiler can't see but mixed-version clusters and the
// single-threaded event loop depend on. CI and `make lint` run it over
// the whole module; it exits non-zero if any invariant is violated.
//
// Usage:
//
//	flaskscheck [-checks wiretable,noblock,...] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Analyzers:
//
//	wiretable   every fabric message is in wire.Messages with a unique
//	            non-zero kind, a binary codec, and a golden frame
//	noblock     the core event loop never sleeps, does I/O, or blocks
//	            on a channel send
//	ctxsend     protocol Sends thread the caller ctx and handle the
//	            error (//flasks:fire-and-forget waives)
//	lockhold    no fsync, send, or blocking I/O while a mutex is held
//	            (//flasks:lockhold-ok waives)
//	metricname  every metrics counter is named once and documented
//
// Deliberate violations are annotated in source; see the Invariants
// section of docs/ARCHITECTURE.md for each rule's escape hatch.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dataflasks/internal/analysis"
	"dataflasks/internal/analysis/passes/ctxsend"
	"dataflasks/internal/analysis/passes/lockhold"
	"dataflasks/internal/analysis/passes/metricname"
	"dataflasks/internal/analysis/passes/noblock"
	"dataflasks/internal/analysis/passes/wiretable"
)

// All is the full analyzer suite, in reporting order.
var All = []*analysis.Analyzer{
	wiretable.Analyzer,
	noblock.Analyzer,
	ctxsend.Analyzer,
	lockhold.Analyzer,
	metricname.Analyzer,
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer subset (default: all)")
	flag.Parse()

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flaskscheck: %v\n", err)
		os.Exit(2)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "flaskscheck: %v\n", err)
		os.Exit(2)
	}
	prog, err := analysis.LoadPackages(cwd, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "flaskscheck: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flaskscheck: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "flaskscheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return All, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have wiretable, noblock, ctxsend, lockhold, metricname)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
