package main

import (
	"testing"

	"dataflasks/internal/analysis"
)

// TestRepoInvariantsClean runs the whole suite over the module — the
// same run CI does — and fails on any finding. Reverting a ctx fix or
// dropping a counter's documentation breaks this test, not just the
// lint step.
func TestRepoInvariantsClean(t *testing.T) {
	prog, err := analysis.LoadPackages(".", nil)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := analysis.Run(prog, All)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
