// Command repolint enforces the repository's documentation hygiene in
// CI. It has two checks, selected by what each argument is:
//
//   - a .md file: every relative link and anchor in it must resolve —
//     linked files exist inside the repository, and #fragments match a
//     heading (GitHub slug rules) of the target document. External
//     URLs and links escaping the repository root (GitHub-web paths
//     like ../../actions/...) are skipped.
//   - a directory: every Go package under it (recursively, skipping
//     testdata and hidden directories) must carry a package doc
//     comment on at least one of its non-test files.
//
// Usage:
//
//	repolint README.md ROADMAP.md docs/ARCHITECTURE.md internal cmd
//
// Exit status 1 and one line per finding when anything fails.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: repolint <file.md | dir> ...")
		os.Exit(2)
	}
	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	var findings []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			findings = append(findings, fmt.Sprintf("%s: %v", arg, err))
			continue
		}
		switch {
		case info.IsDir():
			findings = append(findings, checkPackageDocs(arg)...)
		case strings.HasSuffix(arg, ".md"):
			findings = append(findings, checkMarkdown(root, arg)...)
		default:
			findings = append(findings, fmt.Sprintf("%s: not a directory or .md file", arg))
		}
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// ---------------------------------------------------------------------------
// Package doc comments

// checkPackageDocs walks dir and reports every Go package directory
// whose non-test files all lack a package doc comment.
func checkPackageDocs(dir string) []string {
	var findings []string
	seen := map[string]bool{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		pkgDir := filepath.Dir(path)
		if seen[pkgDir] {
			return nil
		}
		seen[pkgDir] = true
		if !packageHasDoc(pkgDir) {
			findings = append(findings, fmt.Sprintf("%s: package lacks a doc comment on any non-test file", pkgDir))
		}
		return nil
	})
	if err != nil {
		findings = append(findings, fmt.Sprintf("%s: %v", dir, err))
	}
	return findings
}

// packageHasDoc reports whether any non-test .go file in dir carries a
// package doc comment.
func packageHasDoc(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			continue
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Markdown links and anchors

// linkRe matches inline links and images: [text](target) — title
// strings after the target are tolerated.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

// checkMarkdown verifies every relative link and anchor in file.
func checkMarkdown(root, file string) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", file, err)}
	}
	var findings []string
	for _, link := range extractLinks(string(data)) {
		if f := checkLink(root, file, link.target, link.line); f != "" {
			findings = append(findings, f)
		}
	}
	return findings
}

type mdLink struct {
	target string
	line   int
}

// extractLinks returns every inline link target outside fenced code
// blocks, with its 1-based line number.
func extractLinks(doc string) []mdLink {
	var out []mdLink
	inFence := false
	for i, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			out = append(out, mdLink{target: m[1], line: i + 1})
		}
	}
	return out
}

// checkLink validates one target; empty string means OK.
func checkLink(root, file, target string, line int) string {
	for _, scheme := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(target, scheme) {
			return "" // external: not checked
		}
	}
	path, frag, _ := strings.Cut(target, "#")
	resolved := file
	if path != "" {
		resolved = filepath.Join(filepath.Dir(file), path)
		abs, err := filepath.Abs(resolved)
		if err != nil {
			return fmt.Sprintf("%s:%d: %s: %v", file, line, target, err)
		}
		rootAbs, _ := filepath.Abs(root)
		if !strings.HasPrefix(abs+string(filepath.Separator), rootAbs+string(filepath.Separator)) {
			return "" // escapes the repo (GitHub-web path): not checkable locally
		}
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("%s:%d: broken link %q: %v", file, line, target, err)
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(resolved, ".md") {
		return "" // anchors into non-markdown targets: not checkable
	}
	data, err := os.ReadFile(resolved)
	if err != nil {
		return fmt.Sprintf("%s:%d: %q: %v", file, line, target, err)
	}
	for _, slug := range headingSlugs(string(data)) {
		if slug == strings.ToLower(frag) {
			return ""
		}
	}
	return fmt.Sprintf("%s:%d: broken anchor %q: no heading slugs to #%s in %s", file, line, target, frag, resolved)
}

// headingSlugs returns the GitHub anchor slugs of every ATX heading
// outside fenced code blocks, with the -1/-2 suffixes GitHub appends
// to duplicates.
func headingSlugs(doc string) []string {
	var slugs []string
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		if n := counts[slug]; n > 0 {
			slugs = append(slugs, fmt.Sprintf("%s-%d", slug, n))
		} else {
			slugs = append(slugs, slug)
		}
		counts[slug]++
	}
	return slugs
}

// slugify applies GitHub's heading-to-anchor rules: lowercase, drop
// everything but letters, digits, spaces, hyphens and underscores
// (markdown emphasis and code markers included), then spaces become
// hyphens.
func slugify(title string) string {
	title = strings.ToLower(title)
	var b strings.Builder
	for _, r := range title {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		case r > 127 && (unicode.IsLetter(r) || unicode.IsDigit(r)):
			// Unicode letters survive slugging (GitHub keeps them);
			// punctuation like em dashes is dropped either way.
			b.WriteRune(r)
		}
	}
	return b.String()
}
