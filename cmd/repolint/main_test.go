package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Two-layer architecture":          "two-layer-architecture",
		"Building and testing":            "building-and-testing",
		"Store engines":                   "store-engines",
		"Anti-entropy & repair (tuning)":  "anti-entropy--repair-tuning",
		"Flags: `-resp-addr` and friends": "flags--resp-addr-and-friends",
		"§III protocol — packages":        "iii-protocol--packages",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHeadingSlugsDuplicatesAndFences(t *testing.T) {
	doc := "# Title\n## Setup\n```\n# not a heading\n```\n## Setup\n"
	got := headingSlugs(doc)
	want := []string{"title", "setup", "setup-1"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("headingSlugs = %v, want %v", got, want)
	}
}

func TestExtractLinksSkipsFences(t *testing.T) {
	doc := "see [a](x.md)\n```\n[b](y.md)\n```\n![img](pic.png)\n"
	links := extractLinks(doc)
	if len(links) != 2 || links[0].target != "x.md" || links[1].target != "pic.png" {
		t.Fatalf("extractLinks = %+v", links)
	}
	if links[0].line != 1 || links[1].line != 5 {
		t.Fatalf("line numbers = %d, %d", links[0].line, links[1].line)
	}
}

func TestCheckMarkdown(t *testing.T) {
	dir := t.TempDir()
	other := filepath.Join(dir, "other.md")
	os.WriteFile(other, []byte("# Other Doc\n## Real Section\n"), 0o644)
	main := filepath.Join(dir, "main.md")
	content := strings.Join([]string{
		"# Main",
		"[ok file](other.md)",
		"[ok anchor](other.md#real-section)",
		"[ok self](#main)",
		"[external](https://example.com/nope)",
		"[escapes root](../../outside/place.md)",
		"[broken file](missing.md)",
		"[broken anchor](other.md#no-such)",
	}, "\n")
	os.WriteFile(main, []byte(content), 0o644)

	findings := checkMarkdown(dir, main)
	if len(findings) != 2 {
		t.Fatalf("findings = %d: %v", len(findings), findings)
	}
	if !strings.Contains(findings[0], "missing.md") {
		t.Errorf("first finding should be the missing file: %s", findings[0])
	}
	if !strings.Contains(findings[1], "no-such") {
		t.Errorf("second finding should be the broken anchor: %s", findings[1])
	}
}

func TestPackageDocCheck(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good")
	bad := filepath.Join(dir, "bad")
	os.MkdirAll(good, 0o755)
	os.MkdirAll(bad, 0o755)
	os.WriteFile(filepath.Join(good, "g.go"), []byte("// Package good is documented.\npackage good\n"), 0o644)
	os.WriteFile(filepath.Join(bad, "b.go"), []byte("package bad\n"), 0o644)
	// A documented test file must NOT rescue an undocumented package.
	os.WriteFile(filepath.Join(bad, "b_test.go"), []byte("// Package bad docs in tests do not count.\npackage bad\n"), 0o644)

	findings := checkPackageDocs(dir)
	if len(findings) != 1 || !strings.Contains(findings[0], "bad") {
		t.Fatalf("findings = %v, want exactly the bad package", findings)
	}
}
