// Command flaskctl is the CLI client for a DataFlasks deployment.
//
//	flaskctl -seeds 1@127.0.0.1:7001 ping
//	flaskctl -seeds 1@127.0.0.1:7001 put greeting 1 "hello world"
//	flaskctl -seeds 1@127.0.0.1:7001 get greeting
//	flaskctl -seeds 1@127.0.0.1:7001 get greeting 1
//	flaskctl -seeds 1@127.0.0.1:7001 del greeting
//	flaskctl -seeds 1@127.0.0.1:7001 del greeting 1
//	flaskctl -seeds 1@127.0.0.1:7001 bench -ops 1000 -mode pipeline
//	flaskctl -seeds 1@127.0.0.1:7001 snapshot ./backup
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"
	"time"

	"dataflasks"
)

func main() {
	var (
		seeds   = flag.String("seeds", "", "comma-separated contacts, each id@host:port (required)")
		slices  = flag.Int("slices", 10, "cluster slice count (must match the deployment)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-operation timeout")
		trace   = flag.Uint64("trace", 0, "stamp data operations with this trace id (inspect with: flaskctl trace <http-addr> <id>)")
	)
	flag.Parse()

	if flag.NArg() == 0 {
		usage()
	}
	args := flag.Args()
	switch args[0] {
	case "stats":
		// stats and trace scrape a node's observability plane over
		// plain HTTP; they need its -http-addr, not the epidemic client
		// or any seeds.
		if len(args) != 2 {
			usage()
		}
		runStats(args[1], *timeout)
		return
	case "trace":
		if len(args) != 2 && len(args) != 3 {
			usage()
		}
		traceID := ""
		if len(args) == 3 {
			traceID = args[2]
		}
		runTrace(args[1], traceID, *timeout)
		return
	}
	if *seeds == "" {
		usage()
	}
	if args[0] == "snapshot" {
		// Snapshots talk the segment-streaming protocol directly to one
		// node; they do not need the epidemic client.
		if len(args) != 2 {
			usage()
		}
		runSnapshot(strings.Split(*seeds, ",")[0], args[1], *timeout)
		return
	}
	cl, err := dataflasks.ConnectClient("127.0.0.1:0", strings.Split(*seeds, ","), dataflasks.Config{Slices: *slices})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var opts []dataflasks.OpOption
	if *trace != 0 {
		opts = append(opts, dataflasks.WithTraceID(*trace))
	}

	switch args[0] {
	case "ping":
		if len(args) != 1 {
			usage()
		}
		runPing(cl, *seeds, *timeout)
	case "put":
		if len(args) != 4 {
			usage()
		}
		version := parseVersion(args[2])
		if err := cl.Put(ctx, args[1], version, []byte(args[3]), opts...); err != nil {
			fatal(err)
		}
		fmt.Printf("OK %s v%d (%d bytes)\n", args[1], version, len(args[3]))
	case "get":
		switch len(args) {
		case 2:
			value, version, err := cl.GetLatest(ctx, args[1], opts...)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s v%d: %s\n", args[1], version, value)
		case 3:
			version := parseVersion(args[2])
			value, err := cl.Get(ctx, args[1], version, opts...)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s v%d: %s\n", args[1], version, value)
		default:
			usage()
		}
	case "del":
		switch len(args) {
		case 2:
			// No version: delete each replica's newest stored version.
			if err := cl.Delete(ctx, args[1], dataflasks.Latest, opts...); err != nil {
				fatal(err)
			}
			fmt.Printf("DELETED %s (latest)\n", args[1])
		case 3:
			version := parseVersion(args[2])
			if err := cl.Delete(ctx, args[1], version, opts...); err != nil {
				fatal(err)
			}
			fmt.Printf("DELETED %s v%d\n", args[1], version)
		default:
			usage()
		}
	case "bench":
		benchFlags := flag.NewFlagSet("bench", flag.ExitOnError)
		ops := benchFlags.Int("ops", 100, "operations to run")
		mode := benchFlags.String("mode", "blocking", "write shape: blocking, pipeline or batch")
		acks := benchFlags.Int("acks", 1, "replica acks per write")
		_ = benchFlags.Parse(args[1:])
		runBench(cl, *ops, *mode, *acks, *timeout)
	default:
		usage()
	}
}

// runPing round-trips one throwaway object through the cluster via the
// public client — a write must reach a replica and its ack must come
// back, so success proves the seeds are dialable AND the epidemic data
// path works. The probe is deleted afterwards (best effort).
func runPing(cl *dataflasks.Client, seeds string, timeout time.Duration) {
	key := fmt.Sprintf("__flaskctl/ping/%08x", rand.Uint32())
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	if err := cl.Put(ctx, key, 1, []byte("ping")); err != nil {
		fmt.Fprintf(os.Stderr, "flaskctl: ping failed: no reply from the cluster via -seeds %s\n", seeds)
		fmt.Fprintf(os.Stderr, "  check that flasksd is running on the seed addresses and that they are reachable\n")
		fmt.Fprintf(os.Stderr, "  (%v)\n", err)
		os.Exit(1)
	}
	rtt := time.Since(start)
	_ = cl.Delete(ctx, key, 1)
	fmt.Printf("PONG in %s (write acknowledged by a replica)\n", rtt.Round(100*time.Microsecond))
}

// runSnapshot downloads one node's sealed segments into dir as a
// restorable snapshot, printing per-segment progress.
func runSnapshot(seed, dir string, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	var lastSeg uint64
	sawSeg := false
	res, err := dataflasks.DownloadSnapshot(ctx, seed, dir, dataflasks.Config{}, func(segment uint64, bytes int64) {
		if !sawSeg || segment != lastSeg {
			sawSeg = true
			lastSeg = segment
			fmt.Printf("  segment %d...\n", segment)
		}
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("SNAPSHOT %s: %d segments, %d bytes in %s (restore with flasksd -restore %s)\n",
		dir, res.Segments, res.Bytes, time.Since(start).Round(time.Millisecond), dir)
}

func parseVersion(s string) uint64 {
	version, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		fatal(fmt.Errorf("bad version %q: %w", s, err))
	}
	return version
}

// runBench drives ops puts in the requested shape. The three modes
// share payloads and ack level, so their throughputs are comparable:
// blocking waits out each op before issuing the next, pipeline keeps
// every future in flight at once, batch ships per-slice
// PutBatchRequest messages.
func runBench(cl *dataflasks.Client, ops int, mode string, acks int, timeout time.Duration) {
	const payload = "benchmark-payload"
	opt := []dataflasks.OpOption{dataflasks.WithAcks(acks)}
	key := func(i int) string { return fmt.Sprintf("bench%06d", i) }
	fails := 0
	start := time.Now()
	switch mode {
	case "blocking":
		for i := 0; i < ops; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			if err := cl.Put(ctx, key(i), 1, []byte(payload), opt...); err != nil {
				fails++
			}
			cancel()
		}
	case "pipeline":
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		futures := make([]*dataflasks.Op, 0, ops)
		for i := 0; i < ops; i++ {
			futures = append(futures, cl.PutAsync(key(i), 1, []byte(payload), opt...))
		}
		for _, op := range futures {
			if err := op.Wait(ctx); err != nil {
				fails++
			}
		}
	case "batch":
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		objs := make([]dataflasks.Object, 0, ops)
		for i := 0; i < ops; i++ {
			objs = append(objs, dataflasks.Object{Key: key(i), Version: 1, Value: []byte(payload)})
		}
		for _, op := range cl.PutBatchAsync(objs, opt...) {
			if err := op.Wait(ctx); err != nil {
				fails++
			}
		}
	default:
		fatal(fmt.Errorf("unknown bench mode %q (want blocking, pipeline or batch)", mode))
	}
	elapsed := time.Since(start)
	fmt.Printf("%d %s puts in %s (%.1f ops/s, %d failed)\n",
		ops, mode, elapsed.Round(time.Millisecond), float64(ops)/elapsed.Seconds(), fails)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  flaskctl -seeds id@host:port[,...] ping
  flaskctl -seeds id@host:port[,...] put <key> <version> <value>
  flaskctl -seeds id@host:port[,...] get <key> [version]
  flaskctl -seeds id@host:port[,...] del <key> [version]
  flaskctl -seeds id@host:port[,...] bench [-ops N] [-mode blocking|pipeline|batch] [-acks N]
  flaskctl -seeds id@host:port[,...] snapshot <dir>
  flaskctl stats <http-addr>            (scrape a node's /metrics; needs flasksd -http-addr)
  flaskctl trace <http-addr> [trace-id] (dump a node's /trace journal, optionally one request)`)
	os.Exit(2)
}

// fatal exits non-zero with a readable message. Retry-budget
// exhaustion almost always means nothing answered at the seed
// addresses, so it gets a connection-failure explanation instead of a
// raw error dump.
func fatal(err error) {
	if errors.Is(err, dataflasks.ErrTimeout) {
		fmt.Fprintln(os.Stderr, "flaskctl: no reply from the cluster — check that the -seeds addresses point at running flasksd nodes")
		fmt.Fprintf(os.Stderr, "  (%v)\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "flaskctl:", err)
	os.Exit(1)
}
