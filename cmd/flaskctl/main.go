// Command flaskctl is the CLI client for a DataFlasks deployment.
//
//	flaskctl -seeds 1@127.0.0.1:7001 put greeting 1 "hello world"
//	flaskctl -seeds 1@127.0.0.1:7001 get greeting
//	flaskctl -seeds 1@127.0.0.1:7001 get greeting 1
//	flaskctl -seeds 1@127.0.0.1:7001 bench -ops 100
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dataflasks"
)

func main() {
	var (
		seeds   = flag.String("seeds", "", "comma-separated contacts, each id@host:port (required)")
		slices  = flag.Int("slices", 10, "cluster slice count (must match the deployment)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-operation timeout")
	)
	flag.Parse()

	if *seeds == "" || flag.NArg() == 0 {
		usage()
	}
	cl, err := dataflasks.ConnectClient("127.0.0.1:0", strings.Split(*seeds, ","), dataflasks.Config{Slices: *slices})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	args := flag.Args()
	switch args[0] {
	case "put":
		if len(args) != 4 {
			usage()
		}
		version, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil {
			fatal(fmt.Errorf("bad version %q: %w", args[2], err))
		}
		if err := cl.Put(ctx, args[1], version, []byte(args[3])); err != nil {
			fatal(err)
		}
		fmt.Printf("OK %s v%d (%d bytes)\n", args[1], version, len(args[3]))
	case "get":
		switch len(args) {
		case 2:
			value, version, err := cl.GetLatest(ctx, args[1])
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s v%d: %s\n", args[1], version, value)
		case 3:
			version, err := strconv.ParseUint(args[2], 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad version %q: %w", args[2], err))
			}
			value, err := cl.Get(ctx, args[1], version)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s v%d: %s\n", args[1], version, value)
		default:
			usage()
		}
	case "bench":
		benchFlags := flag.NewFlagSet("bench", flag.ExitOnError)
		ops := benchFlags.Int("ops", 100, "operations to run")
		_ = benchFlags.Parse(args[1:])
		runBench(cl, *ops, *timeout)
	default:
		usage()
	}
}

func runBench(cl *dataflasks.Client, ops int, timeout time.Duration) {
	start := time.Now()
	fails := 0
	for i := 0; i < ops; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		key := fmt.Sprintf("bench%06d", i)
		if err := cl.Put(ctx, key, 1, []byte("benchmark-payload")); err != nil {
			fails++
		}
		cancel()
	}
	elapsed := time.Since(start)
	fmt.Printf("%d puts in %s (%.1f ops/s, %d failed)\n",
		ops, elapsed.Round(time.Millisecond), float64(ops)/elapsed.Seconds(), fails)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  flaskctl -seeds id@host:port[,...] put <key> <version> <value>
  flaskctl -seeds id@host:port[,...] get <key> [version]
  flaskctl -seeds id@host:port[,...] bench [-ops N]`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flaskctl:", err)
	os.Exit(1)
}
