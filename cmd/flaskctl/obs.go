// Observability subcommands: stats and trace scrape a node's HTTP
// plane (flasksd -http-addr) and pretty-print what it serves. They
// validate the scrape through obs.ParseExposition, so flaskctl doubles
// as a conformance check against any running node.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"dataflasks/internal/obs"
)

// httpGet fetches one plane endpoint; addr may be bare "host:port".
func httpGet(addr, path string, timeout time.Duration) ([]byte, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	c := &http.Client{Timeout: timeout}
	resp, err := c.Get(addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s%s: %s: %s", addr, path, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// runStats scrapes /metrics and prints every family, histograms
// condensed to count/sum plus derived quantile upper bounds.
func runStats(addr string, timeout time.Duration) {
	body, err := httpGet(addr, "/metrics", timeout)
	if err != nil {
		fatal(err)
	}
	families, err := obs.ParseExposition(body)
	if err != nil {
		fatal(fmt.Errorf("malformed /metrics exposition: %w", err))
	}
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := families[name]
		if f.Type == "histogram" {
			printHistogram(f)
			continue
		}
		for _, s := range f.Samples {
			fmt.Printf("%-44s %s\n", sampleLabel(s), formatValue(s.Value))
		}
	}
}

// sampleLabel renders a sample's name with its labels, if any.
func sampleLabel(s obs.Sample) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, s.Labels[k])
	}
	return s.Name + "{" + strings.Join(parts, ",") + "}"
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// printHistogram prints one line per label group: count, sum and the
// p50/p99 upper bounds the power-of-two buckets support.
func printHistogram(f *obs.Family) {
	type series struct {
		labels  string
		les     []float64
		buckets []float64
		sum     float64
		count   float64
	}
	groups := map[string]*series{}
	var order []string
	for _, s := range f.Samples {
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%q", k, s.Labels[k])
		}
		sig := strings.Join(parts, ",")
		g, ok := groups[sig]
		if !ok {
			g = &series{labels: sig}
			groups[sig] = g
			order = append(order, sig)
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, _ := strconv.ParseFloat(s.Labels["le"], 64)
			g.les = append(g.les, le)
			g.buckets = append(g.buckets, s.Value)
		case strings.HasSuffix(s.Name, "_sum"):
			g.sum = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			g.count = s.Value
		}
	}
	for _, sig := range order {
		g := groups[sig]
		name := f.Name
		if g.labels != "" {
			name += "{" + g.labels + "}"
		}
		fmt.Printf("%-44s count=%s sum=%ss p50<=%s p99<=%s\n",
			name, formatValue(g.count), formatValue(g.sum),
			quantileBound(g.les, g.buckets, g.count, 0.50),
			quantileBound(g.les, g.buckets, g.count, 0.99))
	}
}

// quantileBound returns the smallest bucket bound covering quantile q
// of a cumulative bucket series — an upper bound exact to within the
// 2x bucket spacing (see the exposition HELP text).
func quantileBound(les, buckets []float64, count, q float64) string {
	if count == 0 {
		return "-"
	}
	target := q * count
	for i, cum := range buckets {
		if cum >= target {
			if math.IsInf(les[i], 1) {
				return "+Inf"
			}
			return time.Duration(les[i] * float64(time.Second)).Round(time.Microsecond).String()
		}
	}
	return "+Inf"
}

// runTrace dumps /trace (optionally one trace id) as readable lines.
func runTrace(addr, traceID string, timeout time.Duration) {
	path := "/trace"
	if traceID != "" {
		if _, err := strconv.ParseUint(traceID, 10, 64); err != nil {
			fatal(fmt.Errorf("bad trace id %q: %w", traceID, err))
		}
		path += "?id=" + traceID
	}
	body, err := httpGet(addr, path, timeout)
	if err != nil {
		fatal(err)
	}
	var dump struct {
		Node   uint64 `json:"node"`
		Events []struct {
			Kind    string        `json:"kind"`
			Seq     uint64        `json:"seq"`
			Time    int64         `json:"time_unix_nano"`
			TraceID uint64        `json:"trace_id"`
			Key     string        `json:"key"`
			Peer    uint64        `json:"peer"`
			Seg     uint64        `json:"seg"`
			Bytes   uint64        `json:"bytes"`
			Objects uint64        `json:"objects"`
			Dur     time.Duration `json:"dur_nanos"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		fatal(fmt.Errorf("malformed /trace response: %w", err))
	}
	fmt.Printf("node %d: %d events\n", dump.Node, len(dump.Events))
	for _, ev := range dump.Events {
		var b strings.Builder
		fmt.Fprintf(&b, "%s  #%-5d %-13s", time.Unix(0, ev.Time).Format("15:04:05.000"), ev.Seq, ev.Kind)
		if ev.TraceID != 0 {
			fmt.Fprintf(&b, " trace=%d", ev.TraceID)
		}
		if ev.Key != "" {
			fmt.Fprintf(&b, " key=%q", ev.Key)
		}
		if ev.Peer != 0 {
			fmt.Fprintf(&b, " peer=%d", ev.Peer)
		}
		if ev.Seg != 0 {
			fmt.Fprintf(&b, " seg=%d", ev.Seg)
		}
		if ev.Bytes != 0 {
			fmt.Fprintf(&b, " bytes=%d", ev.Bytes)
		}
		if ev.Objects != 0 {
			fmt.Fprintf(&b, " objects=%d", ev.Objects)
		}
		if ev.Dur != 0 {
			fmt.Fprintf(&b, " dur=%s", ev.Dur)
		}
		fmt.Println(b.String())
	}
}
