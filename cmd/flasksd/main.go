// Command flasksd runs one DataFlasks node on TCP.
//
// A three-node cluster on one machine:
//
//	flasksd -id 1 -bind 127.0.0.1:7001 &
//	flasksd -id 2 -bind 127.0.0.1:7002 -seeds 1@127.0.0.1:7001 &
//	flasksd -id 3 -bind 127.0.0.1:7003 -seeds 1@127.0.0.1:7001 &
//
// Then talk to it with flaskctl.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dataflasks"
)

func main() {
	var (
		id        = flag.Uint64("id", 0, "unique node id in [1, 2^32) (required)")
		bind      = flag.String("bind", "127.0.0.1:0", "listen address")
		advertise = flag.String("advertise", "", "address peers dial (default: bind)")
		seeds     = flag.String("seeds", "", "comma-separated bootstrap contacts, each id@host:port")
		dataDir   = flag.String("data", "", "object directory (empty: in-memory)")
		engine    = flag.String("engine", "log", "persistence engine with -data: log, disk or memory")
		fsync     = flag.Bool("fsync", true, "block writes until durable (log engine group-commits)")
		segBytes  = flag.Int64("segment-bytes", 0, "log segment roll size (0: 64 MiB default)")
		commitWin = flag.Duration("commit-window", 0, "log group-commit window (0: natural batching)")
		compact   = flag.Float64("compact-live", 0, "compact sealed log segments below this live ratio (0: 0.5 default, <0 disables)")
		compactBw = flag.Int64("compact-rate", 0, "log compaction copy throughput cap in bytes/sec (0: unlimited)")
		slices    = flag.Int("slices", 10, "number of slices k")
		size      = flag.Int("system-size", 0, "expected cluster size N (0: gossip-estimated)")
		capacity  = flag.Float64("capacity", 0, "slicing attribute, e.g. free GB (0: derived from id)")
		period    = flag.Duration("period", 500*time.Millisecond, "gossip round period")
		status    = flag.Duration("status", 10*time.Second, "status line interval (0: quiet)")
	)
	flag.Parse()

	if *id == 0 {
		fmt.Fprintln(os.Stderr, "flasksd: -id is required")
		flag.Usage()
		os.Exit(2)
	}
	var seedList []string
	if *seeds != "" {
		seedList = strings.Split(*seeds, ",")
	}
	var engineKind dataflasks.Engine
	switch *engine {
	case "log":
		engineKind = dataflasks.LogEngine
	case "disk":
		engineKind = dataflasks.DiskEngine
	case "memory":
		engineKind = dataflasks.MemoryEngine
	default:
		fmt.Fprintf(os.Stderr, "flasksd: unknown -engine %q (want log, disk or memory)\n", *engine)
		os.Exit(2)
	}

	node, err := dataflasks.StartNode(dataflasks.NodeConfig{
		ID:          dataflasks.NodeID(*id),
		Bind:        *bind,
		Advertise:   *advertise,
		Seeds:       seedList,
		DataDir:     *dataDir,
		RoundPeriod: *period,
		Config: dataflasks.Config{
			Slices:                 *slices,
			SystemSize:             *size,
			Capacity:               *capacity,
			Engine:                 engineKind,
			Fsync:                  *fsync,
			SegmentMaxBytes:        *segBytes,
			CommitWindow:           *commitWin,
			CompactLiveRatio:       *compact,
			CompactRateBytesPerSec: *compactBw,
		},
	})
	if err != nil {
		log.Fatalf("flasksd: %v", err)
	}
	log.Printf("flasksd: node %s listening on %s (slices=%d)", node.ID(), node.Addr(), *slices)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *status > 0 {
		ticker := time.NewTicker(*status)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				log.Printf("flasksd: slice=%d peers=%d objects=%d dropped=%d",
					node.Slice(), node.PeersKnown(), node.StoredObjects(), node.MailboxDropped())
			case <-stop:
				shutdown(node)
				return
			}
		}
	}
	<-stop
	shutdown(node)
}

func shutdown(node *dataflasks.Node) {
	log.Printf("flasksd: shutting down")
	if err := node.Close(); err != nil {
		log.Printf("flasksd: close: %v", err)
	}
}
