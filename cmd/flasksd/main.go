// Command flasksd runs one DataFlasks node on TCP.
//
// A three-node cluster on one machine:
//
//	flasksd -id 1 -bind 127.0.0.1:7001 &
//	flasksd -id 2 -bind 127.0.0.1:7002 -seeds 1@127.0.0.1:7001 &
//	flasksd -id 3 -bind 127.0.0.1:7003 -seeds 1@127.0.0.1:7001 &
//
// Then talk to it with flaskctl — or any Redis client, via the RESP
// gateway:
//
//	flasksd -id 1 -bind 127.0.0.1:7001 -resp-addr 127.0.0.1:6379
//	redis-cli -p 6379 set greeting "hello"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dataflasks"
	"dataflasks/internal/metrics"
	"dataflasks/internal/resp"
)

func main() {
	var (
		id         = flag.Uint64("id", 0, "unique node id in [1, 2^32) (required)")
		bind       = flag.String("bind", "127.0.0.1:0", "listen address")
		advertise  = flag.String("advertise", "", "address peers dial (default: bind)")
		seeds      = flag.String("seeds", "", "comma-separated bootstrap contacts, each id@host:port")
		dataDir    = flag.String("data", "", "object directory (empty: in-memory)")
		engine     = flag.String("engine", "log", "persistence engine with -data: log, disk or memory")
		fsync      = flag.Bool("fsync", true, "block writes until durable (log engine group-commits)")
		segBytes   = flag.Int64("segment-bytes", 0, "log segment roll size (0: 64 MiB default)")
		commitWin  = flag.Duration("commit-window", 0, "log group-commit window (0: natural batching)")
		compact    = flag.Float64("compact-live", 0, "compact sealed log segments below this live ratio (0: 0.5 default, <0 disables)")
		compactBw  = flag.Int64("compact-rate", 0, "log compaction copy throughput cap in bytes/sec (0: unlimited)")
		slices     = flag.Int("slices", 10, "number of slices k")
		slicer     = flag.String("slicer", "rank", "slice manager: rank, swap or static (static decides instantly; required for single-node deployments)")
		size       = flag.Int("system-size", 0, "expected cluster size N (0: gossip-estimated)")
		capacity   = flag.Float64("capacity", 0, "slicing attribute, e.g. free GB (0: derived from id)")
		period     = flag.Duration("period", 500*time.Millisecond, "gossip round period")
		dataShards = flag.Int("data-shards", 0, "data-plane shard goroutines, partitioned by key hash (0 or 1: single shard; raise on multi-core hosts)")
		status     = flag.Duration("status", 10*time.Second, "status line interval (0: quiet)")
		wireCodec  = flag.String("wire-codec", "binary", "frame encoding on peer links: binary or gob (peers negotiate, so mixed clusters interoperate)")
		udpAddr    = flag.String("udp-addr", "", "datagram control-plane bind address; must share -bind's port, or \"auto\" to derive it (empty: all traffic on TCP)")

		aePushBytes = flag.Int("ae-push-bytes", 0, "value bytes per anti-entropy repair push (0: 1 MiB default)")
		aeRate      = flag.Int("ae-rate", 0, "repair push bytes allowed per anti-entropy round, token bucket (0: unlimited)")
		aeFullEvery = flag.Int("ae-full-every", 0, "full-header repair round cadence; other rounds send Bloom summaries (0: 8 default; 1: always full headers)")

		bootstrap     = flag.Bool("bootstrap", false, "bulk-recover this node's slice data at startup by streaming sealed segments from a slice-mate")
		bootstrapRate = flag.Int("bootstrap-rate", 0, "segment bytes streamed to joiners per gossip round, token bucket (0: 1 MiB default, <0 unlimited)")
		restoreDir    = flag.String("restore", "", "replay a flaskctl snapshot directory into the store before starting (empty: none)")

		respAddr     = flag.String("resp-addr", "", "serve the cluster to Redis clients on this address (empty: disabled)")
		respInflight = flag.Int("resp-inflight", 0, "max pipelined RESP commands in flight per connection (0: 128 default)")
		respGetWait  = flag.Duration("resp-get-timeout", 0, "RESP read attempt budget; a missing key answers null after ~2x this (0: 2s default)")

		httpAddr    = flag.String("http-addr", "", "serve the observability plane (/metrics, /healthz, /readyz, /trace, /debug/pprof/) on this address (empty: disabled)")
		traceEvents = flag.Int("trace-events", 0, "size of the /trace event ring (0: 1024 default, <0 disables tracing)")
	)
	flag.Parse()

	if *id == 0 {
		fmt.Fprintln(os.Stderr, "flasksd: -id is required")
		flag.Usage()
		os.Exit(2)
	}
	var seedList []string
	if *seeds != "" {
		seedList = strings.Split(*seeds, ",")
	}
	var slicerKind dataflasks.Slicer
	switch *slicer {
	case "rank":
		slicerKind = dataflasks.RankSlicer
	case "swap":
		slicerKind = dataflasks.SwapSlicer
	case "static":
		slicerKind = dataflasks.StaticSlicer
	default:
		fmt.Fprintf(os.Stderr, "flasksd: unknown -slicer %q (want rank, swap or static)\n", *slicer)
		os.Exit(2)
	}
	var engineKind dataflasks.Engine
	switch *engine {
	case "log":
		engineKind = dataflasks.LogEngine
	case "disk":
		engineKind = dataflasks.DiskEngine
	case "memory":
		engineKind = dataflasks.MemoryEngine
	default:
		fmt.Fprintf(os.Stderr, "flasksd: unknown -engine %q (want log, disk or memory)\n", *engine)
		os.Exit(2)
	}

	cfg := dataflasks.Config{
		Slices:                 *slices,
		WireCodec:              *wireCodec,
		Slicer:                 slicerKind,
		SystemSize:             *size,
		Capacity:               *capacity,
		Engine:                 engineKind,
		Fsync:                  *fsync,
		SegmentMaxBytes:        *segBytes,
		CommitWindow:           *commitWin,
		CompactLiveRatio:       *compact,
		CompactRateBytesPerSec: *compactBw,
		MaxPushBytes:           *aePushBytes,
		RepairRateBytes:        *aeRate,
		BloomFullEvery:         *aeFullEvery,
		Bootstrap:              *bootstrap,
		BootstrapRateBytes:     *bootstrapRate,
		DataShards:             *dataShards,
	}
	// The gateway's per-command stats registry is created up front so
	// the observability plane (which starts with the node) can export
	// it; the gateway itself starts after the node it loops back onto.
	var respStats *metrics.CommandStats
	if *respAddr != "" {
		respStats = metrics.NewCommandStats()
	}
	node, err := dataflasks.StartNode(dataflasks.NodeConfig{
		ID:          dataflasks.NodeID(*id),
		Bind:        *bind,
		Advertise:   *advertise,
		Seeds:       seedList,
		DataDir:     *dataDir,
		RestoreDir:  *restoreDir,
		RoundPeriod: *period,
		UDPBind:     *udpAddr,
		HTTPAddr:    *httpAddr,
		TraceEvents: *traceEvents,
		RESPStats:   respStats,
		Config:      cfg,
	})
	if err != nil {
		log.Fatalf("flasksd: %v", err)
	}
	log.Printf("flasksd: node %s listening on %s (slices=%d codec=%s)", node.ID(), node.Addr(), *slices, *wireCodec)
	if ua := node.UDPAddr(); ua != "" {
		log.Printf("flasksd: datagram control plane on %s", ua)
	}
	if ha := node.HTTPAddr(); ha != "" {
		log.Printf("flasksd: observability plane listening on %s", ha)
	}

	// The RESP gateway serves Redis clients through one shared
	// DataFlasks client looped back onto this node, so every gateway
	// command takes the same epidemic path a remote client would.
	var gateway *resp.Server
	if *respAddr != "" {
		cl, err := dataflasks.ConnectClient("127.0.0.1:0",
			[]string{fmt.Sprintf("%d@%s", *id, node.Addr())}, cfg)
		if err != nil {
			log.Fatalf("flasksd: resp gateway client: %v", err)
		}
		gateway = resp.NewServer(cl, resp.Config{
			MaxInflight: *respInflight,
			GetTimeout:  *respGetWait,
			Stats:       respStats,
			Logf:        log.Printf,
		})
		addr, err := gateway.Listen(*respAddr)
		if err != nil {
			log.Fatalf("flasksd: %v", err)
		}
		log.Printf("flasksd: resp gateway listening on %s", addr)
		defer cl.Close()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if *status > 0 {
		ticker := time.NewTicker(*status)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				log.Printf("flasksd: slice=%d peers=%d objects=%d dropped=%d send_errors=%d",
					node.Slice(), node.PeersKnown(), node.StoredObjects(), node.MailboxDropped(), node.SendErrors())
				ws := node.WireStats()
				log.Printf("flasksd: wire encode_bytes=%d codec_fallbacks=%d udp sent=%d dropped=%d oversize=%d",
					ws.EncodeBytes, ws.CodecFallbacks, ws.UDPSent, ws.UDPDropped, ws.UDPOversize)
				if bs := node.BootstrapStats(); *bootstrap || bs.Sent > 0 {
					log.Printf("flasksd: bootstrap done=%t fellback=%t sent=%d segments=%d bytes=%d rejected=%d fallback_objects=%d",
						bs.Done, bs.FellBack, bs.Sent, bs.Segments, bs.Bytes, bs.ChunksRejected, bs.FallbackObjects)
				}
				if gateway != nil {
					calls, errs := respStats.Totals()
					log.Printf("flasksd: resp conns=%d cmds=%d errors=%d p50=%s p99=%s",
						gateway.Conns(), calls, errs,
						respStats.Quantile(0.50), respStats.Quantile(0.99))
				}
			case <-stop:
				shutdown(node, gateway)
				return
			}
		}
	}
	<-stop
	shutdown(node, gateway)
}

// shutdown severs the gateway before the node so in-flight RESP
// commands fail fast instead of timing out against a dead node.
func shutdown(node *dataflasks.Node, gateway *resp.Server) {
	log.Printf("flasksd: shutting down")
	if gateway != nil {
		_ = gateway.Close()
	}
	if err := node.Close(); err != nil {
		log.Printf("flasksd: close: %v", err)
	}
}
