package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"

	"dataflasks/internal/obs"
)

// TestFlasksdObsSmoke builds the real flasksd binary, boots it with
// -http-addr on a free port, and exercises the observability plane end
// to end: /metrics must serve a well-formed exposition and /readyz must
// reach 200 within the deadline. It fails on malformed exposition or a
// node that never reports ready. Slow path — skipped under -short (CI
// runs it as a dedicated non-short step).
func TestFlasksdObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the real daemon; skipped in -short")
	}

	bin := filepath.Join(t.TempDir(), "flasksd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build flasksd: %v\n%s", err, out)
	}

	daemon := exec.Command(bin,
		"-id", "1", "-bind", "127.0.0.1:0",
		"-slices", "1", "-slicer", "static", "-system-size", "1",
		"-period", "50ms", "-status", "0",
		"-http-addr", "127.0.0.1:0")
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatalf("start flasksd: %v", err)
	}
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	addrCh := make(chan string, 1)
	go func() {
		re := regexp.MustCompile(`observability plane listening on (\S+)`)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			logMu.Lock()
			logBuf.WriteString(sc.Text())
			logBuf.WriteByte('\n')
			logMu.Unlock()
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	defer func() {
		_ = daemon.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = daemon.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = daemon.Process.Kill()
			<-done
		}
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		logMu.Lock()
		defer logMu.Unlock()
		t.Fatalf("flasksd never announced the observability plane; log:\n%s", logBuf.String())
	}

	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}

	// A singleton static-slicer node must become ready quickly; a node
	// that never flips is a deployment-breaking regression.
	deadline := time.Now().Add(20 * time.Second)
	for {
		code, _ := get("/readyz")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz still %d after 20s — node never became ready", code)
		}
		time.Sleep(50 * time.Millisecond)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	fams, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatalf("live daemon serves malformed exposition: %v\n%s", err, body)
	}
	for _, want := range []string{"flasks_ready", "flasks_stored_objects", "flasks_tick_duration_seconds"} {
		if _, ok := fams[want]; !ok {
			t.Errorf("family %s missing from the daemon scrape", want)
		}
	}
	if f := fams["flasks_ready"]; len(f.Samples) != 1 || f.Samples[0].Value != 1 {
		t.Errorf("flasks_ready should report 1 on a ready node: %+v", f.Samples)
	}

	if code, body := get("/trace"); code != http.StatusOK || !bytes.Contains(body, []byte(`"events"`)) {
		t.Errorf("/trace = %d %s", code, body)
	}
}
