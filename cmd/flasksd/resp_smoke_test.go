package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"
)

// TestFlasksdRESPGatewaySmoke builds the real flasksd binary, boots it
// with -resp-addr on a free port, and runs a scripted pipelined RESP
// conversation against it, asserting the replies byte-for-byte. It is
// the end-to-end proof that "any Redis client can talk to a flasksd":
// everything from flag parsing through the loopback client to the
// epidemic store runs for real. Slow path — skipped under -short (CI
// runs it as a dedicated non-short step).
func TestFlasksdRESPGatewaySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the real daemon; skipped in -short")
	}

	bin := filepath.Join(t.TempDir(), "flasksd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build flasksd: %v\n%s", err, out)
	}

	// A singleton deployment: one slice, static slicer (a lone node has
	// no gossip stream to estimate rank from), RESP on an OS-chosen
	// port that is parsed back out of the boot log.
	daemon := exec.Command(bin,
		"-id", "1", "-bind", "127.0.0.1:0",
		"-slices", "1", "-slicer", "static", "-system-size", "1",
		"-period", "50ms", "-status", "0",
		"-resp-addr", "127.0.0.1:0")
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatalf("start flasksd: %v", err)
	}
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	respAddrCh := make(chan string, 1)
	go func() {
		re := regexp.MustCompile(`resp gateway listening on (\S+)`)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			logMu.Lock()
			logBuf.WriteString(sc.Text())
			logBuf.WriteByte('\n')
			logMu.Unlock()
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case respAddrCh <- m[1]:
				default:
				}
			}
		}
	}()
	defer func() {
		_ = daemon.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = daemon.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = daemon.Process.Kill()
			<-done
		}
	}()

	var addr string
	select {
	case addr = <-respAddrCh:
	case <-time.After(30 * time.Second):
		logMu.Lock()
		defer logMu.Unlock()
		t.Fatalf("flasksd never announced the RESP gateway; log:\n%s", logBuf.String())
	}

	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		t.Fatalf("dial gateway %s: %v", addr, err)
	}
	defer conn.Close()

	// The scripted conversation: every data command of the gateway's
	// table, pipelined in one burst, replies asserted byte-for-byte.
	script := "*3\r\n$3\r\nSET\r\n$5\r\nhello\r\n$5\r\nworld\r\n" +
		"*2\r\n$3\r\nGET\r\n$5\r\nhello\r\n" +
		"*5\r\n$4\r\nMSET\r\n$1\r\na\r\n$2\r\nv1\r\n$1\r\nb\r\n$2\r\nv2\r\n" +
		"*3\r\n$4\r\nMGET\r\n$1\r\na\r\n$1\r\nb\r\n" +
		"*4\r\n$6\r\nEXISTS\r\n$1\r\na\r\n$1\r\nb\r\n$5\r\nhello\r\n" +
		"*3\r\n$3\r\nDEL\r\n$1\r\na\r\n$1\r\nb\r\n" +
		"PING\r\n" +
		"*1\r\n$4\r\nQUIT\r\n"
	want := "+OK\r\n" +
		"$5\r\nworld\r\n" +
		"+OK\r\n" +
		"*2\r\n$2\r\nv1\r\n$2\r\nv2\r\n" +
		":3\r\n" +
		":2\r\n" +
		"+PONG\r\n" +
		"+OK\r\n"

	if _, err := conn.Write([]byte(script)); err != nil {
		t.Fatalf("write conversation: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(60 * time.Second))
	got, err := io.ReadAll(conn) // QUIT closes the connection cleanly
	if err != nil {
		t.Fatalf("read replies: %v (got %q)", err, got)
	}
	if string(got) != want {
		t.Fatalf("conversation replies diverge:\n got %q\nwant %q", got, want)
	}
	fmt.Printf("flasksd RESP smoke: %d reply bytes matched byte-for-byte\n", len(got))
}
