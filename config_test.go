package dataflasks

import (
	"context"
	"testing"
	"time"

	"dataflasks/internal/core"
)

func TestConfigTranslation(t *testing.T) {
	cfg := Config{
		Slices:     7,
		SystemSize: 300,
		Capacity:   2.5,
		PSS:        Newscast,
		Slicer:     SwapSlicer,
	}
	cc := cfg.coreConfig()
	if cc.Slices != 7 || cc.SystemSize != 300 || cc.Capacity != 2.5 {
		t.Errorf("basic fields: %+v", cc)
	}
	if cc.PSS != core.PSSNewscast {
		t.Errorf("PSS = %v", cc.PSS)
	}
	if cc.Slicer != core.SlicerSwap {
		t.Errorf("Slicer = %v", cc.Slicer)
	}

	if (Config{}).coreConfig().PSS != core.PSSCyclon {
		t.Error("default PSS not Cyclon")
	}
	if (Config{Slicer: StaticSlicer}).coreConfig().Slicer != core.SlicerStatic {
		t.Error("static slicer not translated")
	}
	if (Config{DisableAntiEntropy: true}).coreConfig().AntiEntropyEvery != -1 {
		t.Error("DisableAntiEntropy not translated")
	}
	if (Config{}).coreConfig().AntiEntropyEvery != 0 {
		t.Error("anti-entropy should default on (0 → internal default)")
	}
}

func TestClientPutAcksTranslation(t *testing.T) {
	tests := []struct {
		public, internal int
	}{
		{0, 1},   // default: one ack
		{3, 3},   // explicit
		{-1, -1}, // fire-and-forget maps to the client's "no acks" mode
	}
	for _, tt := range tests {
		if got := (Config{PutAcks: tt.public}).clientPutAcks(); got != tt.internal {
			t.Errorf("clientPutAcks(%d) = %d, want %d", tt.public, got, tt.internal)
		}
	}
}

func TestParseSeed(t *testing.T) {
	id, addr, err := ParseSeed("42@10.0.0.1:7000")
	if err != nil || id != 42 || addr != "10.0.0.1:7000" {
		t.Errorf("ParseSeed = %v, %q, %v", id, addr, err)
	}
	for _, bad := range []string{"", "42", "@addr", "42@", "x@addr", "99999999999999@addr"} {
		if _, _, err := ParseSeed(bad); err == nil {
			t.Errorf("ParseSeed(%q) accepted", bad)
		}
	}
}

func TestStartNodeValidation(t *testing.T) {
	if _, err := StartNode(NodeConfig{ID: 0}); err == nil {
		t.Error("id 0 accepted")
	}
	if _, err := StartNode(NodeConfig{ID: 1 << 33}); err == nil {
		t.Error("id beyond 32 bits accepted")
	}
	if _, err := StartNode(NodeConfig{ID: 1, Bind: "127.0.0.1:0", Seeds: []string{"garbage"}}); err == nil {
		t.Error("bad seed accepted")
	}
}

func TestAddAndRemoveNodesWhileRunning(t *testing.T) {
	c, err := NewCluster(10, Config{Slices: 2}, WithRoundPeriod(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	id, err := c.AddNode()
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if len(c.NodeIDs()) != 11 {
		t.Errorf("population = %d", len(c.NodeIDs()))
	}
	if _, err := c.SliceOf(id); err != nil {
		t.Errorf("SliceOf(new): %v", err)
	}
	if err := c.RemoveNode(id); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if err := c.RemoveNode(id); err == nil {
		t.Error("double remove succeeded")
	}
	if _, err := c.SliceOf(id); err == nil {
		t.Error("SliceOf(removed) succeeded")
	}
}

func TestPutRejectsReservedVersion(t *testing.T) {
	c, err := NewCluster(5, Config{}, WithRoundPeriod(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	if err := cl.Put(ctx, "k", Latest, []byte("x")); err == nil {
		t.Error("Put with reserved version accepted")
	}
}

func contextWithTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 10*time.Second)
}
